//! Experiment E2: Figure 4 — average queue length vs system load N/M for
//! classical and quantum load balancing, plus the paper's two robustness
//! claims: E2b (results depend on the ratio N/M, not N itself) and E2c
//! (footnote 2: the advantage is robust to other server disciplines).

use crate::report::{sim_result_to_json, Report};
use crate::table::{f2, Table};
use loadbalance::metrics::{knee_load, SimResult};
use loadbalance::server::Discipline;
use loadbalance::sim::{run_simulation, SimConfig};
use loadbalance::strategy::Strategy;
use loadbalance::task::BernoulliWorkload;
use obs::json::Json;
use qmath::stats::wilson;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        ("uniform-random", Strategy::UniformRandom),
        ("round-robin", Strategy::RoundRobin),
        ("power-of-two", Strategy::PowerOfTwoChoices),
        ("paired-split", Strategy::PairedAlwaysSplit),
        ("paired-match", Strategy::PairedMatchTypes),
        ("paired-quantum", Strategy::quantum_ideal()),
    ]
}

fn sim_point(
    n_balancers: usize,
    load: f64,
    timesteps: u64,
    discipline: Discipline,
    strategy: Strategy,
    seed: u64,
) -> SimResult {
    let n_servers = (n_balancers as f64 / load).round() as usize;
    let config = SimConfig {
        n_balancers,
        n_servers,
        timesteps,
        warmup: timesteps / 4,
        discipline,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut workload = BernoulliWorkload::paper();
    run_simulation(config, strategy, &mut workload, &mut rng)
}

/// The Figure 4 sweep: N = 100 balancers, load 0.6–1.5.
pub fn run(quick: bool) -> Report {
    run_with_threads(runtime::thread_count(), quick)
}

/// Worker-count seam for [`run`]: every point's seed is a function of its
/// grid coordinates only, so the report — text and JSON alike — is
/// byte-identical at any `threads` (the determinism tests sweep this).
pub fn run_with_threads(threads: usize, quick: bool) -> Report {
    let (n, steps) = if quick { (40, 600) } else { (100, 3_000) };
    let loads: Vec<f64> = (6..=15).map(|i| i as f64 / 10.0).collect();
    let strategies = strategies();

    let points = runtime::grid2(strategies.len(), loads.len());
    let flat = runtime::par_map_threads(threads, &points, |_, &(si, li)| {
        sim_point(
            n,
            loads[li],
            steps,
            Discipline::PaperPairedC,
            strategies[si].1,
            crate::point_seed(40, si as u64, li as u64),
        )
    });
    let mut cells: Vec<Vec<Option<SimResult>>> =
        vec![vec![None; loads.len()]; strategies.len()];
    for (&(si, li), r) in points.iter().zip(flat) {
        cells[si][li] = Some(r);
    }
    let cell = |si: usize, li: usize| -> &SimResult {
        cells[si][li].as_ref().expect("every grid cell filled")
    };

    let mut header: Vec<String> = vec!["strategy \\ N/M".into()];
    header.extend(loads.iter().map(|l| format!("{l:.1}")));
    let mut t = Table::new(header);
    for (si, (name, _)) in strategies.iter().enumerate() {
        let mut row = vec![name.to_string()];
        row.extend((0..loads.len()).map(|li| f2(cell(si, li).avg_queue_len)));
        t.row(row);
    }

    // Knee summary: first load where the average queue exceeds 10 tasks
    // (clearly saturating; small thresholds trigger on pre-knee noise).
    let mut report = Report::new("fig4", 40);
    let mut knees = String::new();
    let mut knee_by_name: Vec<(&str, Option<f64>)> = Vec::new();
    for (si, (name, _)) in strategies.iter().enumerate() {
        let pts: Vec<(f64, f64)> = loads
            .iter()
            .copied()
            .zip((0..loads.len()).map(|li| cell(si, li).avg_queue_len))
            .collect();
        let knee = knee_load(&pts, 10.0);
        knee_by_name.push((name, knee));
        report.scalar(format!("knee.{name}"), knee.unwrap_or(f64::INFINITY));
        let shown = knee
            .map(|k| format!("{k:.1}"))
            .unwrap_or_else(|| "> 1.5".into());
        knees.push_str(&format!("  {name:<16} knee (queue > 10) at N/M = {shown}\n"));
    }

    // Per-point payloads: the full SimResult of every grid cell.
    for (si, _) in strategies.iter().enumerate() {
        for li in 0..loads.len() {
            report.point(sim_result_to_json(cell(si, li)));
        }
    }

    // CC co-location interval for the quantum strategy, pooled across the
    // sweep (every pair-round is an independent CHSH trial).
    let qi = strategies.len() - 1;
    let (cc_ok, cc_all) = (0..loads.len()).fold((0u64, 0u64), |(a, b), li| {
        let r = cell(qi, li);
        (a + r.cc_colocated, b + r.cc_rounds)
    });
    if cc_all > 0 {
        report.interval("cc_colocation.paired-quantum", wilson(cc_ok, cc_all));
    }

    // Acceptance: the classical knee must not be later than the quantum
    // knee, and at load 1.2 quantum must have strictly shorter queues.
    let knee_of = |name: &str| -> f64 {
        knee_by_name
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, k)| *k)
            .unwrap_or(f64::INFINITY)
    };
    let (ck, qk) = (knee_of("uniform-random"), knee_of("paired-quantum"));
    report.check(
        "knee-order",
        ck <= qk,
        format!("classical knee {ck} ≤ quantum knee {qk}"),
    );
    let li12 = loads.iter().position(|&l| (l - 1.2).abs() < 1e-9).expect("load 1.2 in grid");
    let (cq, qq) = (cell(0, li12).avg_queue_len, cell(qi, li12).avg_queue_len);
    report.check(
        "quantum-shorter-at-1.2",
        qq < cq,
        format!("quantum {qq:.2} < classical {cq:.2} at load 1.2"),
    );

    report.text = format!(
        "E2 — Figure 4: avg queue length vs load N/M (N = {n}, {steps} steps)\n\n{}\n{knees}",
        t.render()
    );
    report
}

/// E2b: "the results depend primarily on the ratio N/M and remain largely
/// consistent as N varies."
pub fn run_scaling(quick: bool) -> Report {
    let steps = if quick { 600 } else { 3_000 };
    let ns: &[usize] = if quick { &[20, 60, 100] } else { &[20, 60, 100, 200] };
    let loads = [1.0, 1.2];
    let strategies = [
        ("uniform-random", Strategy::UniformRandom),
        ("paired-quantum", Strategy::quantum_ideal()),
    ];

    let mut header: Vec<String> = vec!["strategy @ load".into()];
    header.extend(ns.iter().map(|n| format!("N={n}")));
    let mut t = Table::new(header);

    let mut points = Vec::new();
    for si in 0..strategies.len() {
        for li in 0..loads.len() {
            for ni in 0..ns.len() {
                points.push((si, li, ni));
            }
        }
    }
    let flat = runtime::par_map(&points, |_, &(si, li, ni)| {
        sim_point(
            ns[ni],
            loads[li],
            steps,
            Discipline::PaperPairedC,
            strategies[si].1,
            crate::point_seed(41, (si * 2 + li) as u64, ni as u64),
        )
    });
    let mut report = Report::new("fig4-scaling", 41);
    let mut cells = vec![vec![vec![0.0f64; ns.len()]; loads.len()]; strategies.len()];
    for (&(si, li, ni), r) in points.iter().zip(&flat) {
        cells[si][li][ni] = r.avg_queue_len;
        let mut point = sim_result_to_json(r);
        if let Json::Obj(pairs) = &mut point {
            pairs.insert(0, ("n_balancers".into(), Json::uint(ns[ni] as u64)));
        }
        report.point(point);
    }
    for (si, (name, _)) in strategies.iter().enumerate() {
        for (li, load) in loads.iter().enumerate() {
            let mut row = vec![format!("{name} @ {load:.1}")];
            row.extend(cells[si][li].iter().map(|&q| f2(q)));
            t.row(row);
        }
    }

    // Acceptance: at load 1.0 the quantum queue length must be flat in N —
    // the ratio, not N, drives the result (EXPERIMENTS.md: 3.36–3.50
    // across N at full budget; allow 2× spread for quick-budget noise).
    let quantum_at_1 = &cells[1][0];
    let (lo, hi) = quantum_at_1
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &q| (lo.min(q), hi.max(q)));
    report.scalar("quantum_spread_at_load_1.0", hi / lo);
    report.check(
        "n-independence",
        hi <= 2.0 * lo,
        format!("quantum q̄ at load 1.0 spans [{lo:.2}, {hi:.2}] across N (≤ 2× spread)"),
    );

    report.text = format!(
        "E2b — queue length vs N at fixed N/M (ratio, not N, drives the result)\n\n{}",
        t.render()
    );
    report
}

/// E2c (footnote 2): is the quantum advantage robust to other server
/// execution strategies? Only within the paper's discipline family — see
/// EXPERIMENTS.md. The advantage requires C-priority AND C-pairing
/// *together*: under that combination a split CC pair blocks type-E
/// service at two servers while a co-located CC blocks only one (and is
/// cleared in a single step). Remove pairing (`c-priority-single`) or
/// remove priority (`fifo-paired-c`) and engineered co-arrival only
/// concentrates load, slightly *hurting*. `single-slot` is the control
/// with no type structure at all (no difference, as expected).
pub fn run_disciplines(quick: bool) -> Report {
    let (n, steps) = if quick { (40, 600) } else { (100, 3_000) };
    let load = 1.2;
    let disciplines = [
        Discipline::PaperPairedC,
        Discipline::CPrioritySingle,
        Discipline::FifoPairedC,
        Discipline::ExclusiveFirst,
        Discipline::SingleSlot,
    ];
    let mut t = Table::new(vec!["discipline", "classical q̄", "quantum q̄", "reduction"]);
    let points = runtime::grid2(disciplines.len(), 2);
    let flat = runtime::par_map(&points, |_, &(di, arm)| {
        let strategy = if arm == 0 { Strategy::UniformRandom } else { Strategy::quantum_ideal() };
        sim_point(n, load, steps, disciplines[di], strategy, crate::point_seed(42, di as u64, arm as u64))
    });
    let mut report = Report::new("fig4-disciplines", 42);
    let mut paper_reduction = f64::NAN;
    for (di, d) in disciplines.iter().enumerate() {
        let (cr, qr) = (&flat[di * 2], &flat[di * 2 + 1]);
        let (c, q) = (cr.avg_queue_len, qr.avg_queue_len);
        let red = if c > 0.0 { format!("{:.0}%", 100.0 * (1.0 - q / c)) } else { "-".into() };
        if di == 0 {
            paper_reduction = 1.0 - q / c;
            report.scalar("paper_discipline_reduction", paper_reduction);
        }
        for r in [cr, qr] {
            let mut point = sim_result_to_json(r);
            if let Json::Obj(pairs) = &mut point {
                pairs.insert(0, ("discipline".into(), Json::str(d.label())));
            }
            report.point(point);
        }
        t.row(vec![d.label().to_string(), f2(c), f2(q), red]);
    }
    report.check(
        "paper-discipline-advantage",
        paper_reduction > 0.0,
        format!(
            "paired-C discipline reduction {:.0}% > 0",
            100.0 * paper_reduction
        ),
    );
    report.text = format!(
        "E2c — footnote 2: advantage across server disciplines \
         (load {load}, N = {n}; single-slot is the no-co-location control)\n\n{}",
        t.render()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_knee_is_later_than_classical() {
        // The Figure 4 headline, quick budget.
        let loads = [1.0, 1.1, 1.2];
        let mut classical = Vec::new();
        let mut quantum = Vec::new();
        for (i, &load) in loads.iter().enumerate() {
            classical.push((
                load,
                sim_point(40, load, 600, Discipline::PaperPairedC, Strategy::UniformRandom, crate::point_seed(99, i as u64, 0)).avg_queue_len,
            ));
            quantum.push((
                load,
                sim_point(40, load, 600, Discipline::PaperPairedC, Strategy::quantum_ideal(), crate::point_seed(99, i as u64, 1)).avg_queue_len,
            ));
        }
        let ck = knee_load(&classical, 2.0);
        let qk = knee_load(&quantum, 2.0);
        // Classical crosses at or before quantum (quantum may not cross at
        // all in this range).
        match (ck, qk) {
            (Some(c), Some(q)) => assert!(c <= q, "classical {c} vs quantum {q}"),
            (Some(_), None) => {} // quantum never crossed: even better
            other => panic!("unexpected knees: {other:?}"),
        }
    }

    #[test]
    fn single_slot_control_shows_no_quantum_benefit() {
        // Without a co-location benefit, pairing C's together cannot
        // help; quantum must not beat classical here. (It may be WORSE:
        // engineered co-arrival of CC pairs at one-task-per-step servers
        // adds arrival burstiness, so the check is one-sided.) Means over
        // several seeds, since a single replicate has ~±20% spread.
        let mean = |strategy: Strategy, lane: u64| -> f64 {
            (0..4)
                .map(|r| {
                    sim_point(
                        40,
                        0.9,
                        800,
                        Discipline::SingleSlot,
                        strategy,
                        crate::point_seed(98, lane, r),
                    )
                    .avg_queue_len
                })
                .sum::<f64>()
                / 4.0
        };
        let c = mean(Strategy::UniformRandom, 0);
        let q = mean(Strategy::quantum_ideal(), 1);
        assert!(
            q > c * 0.9,
            "single-slot quantum {q} improbably beat classical {c}"
        );
    }
}
