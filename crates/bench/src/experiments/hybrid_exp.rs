//! Experiment E7: the §4.1 caveat about classical/hybrid baselines.
//!
//! "One may consider classical and hybrid strategies that dedicate
//! servers to type-C tasks, though these would not work if there are
//! multiple subtypes of type-C tasks that do not like being mixed."
//!
//! We sweep the number of C-subtypes. Servers can only pair *same-subtype*
//! C tasks, so as subtypes multiply, every strategy loses pairing
//! opportunities — but the ranking between dedicated-servers, uniform
//! random and quantum pairing is what the caveat is about.

use crate::report::Report;
use crate::table::{f2, Table};
use loadbalance::server::Discipline;
use loadbalance::sim::{run_simulation, SimConfig};
use loadbalance::strategy::Strategy;
use loadbalance::task::{BernoulliWorkload, BurstyWorkload};
use obs::json::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the hybrid-baseline ablation.
pub fn run(quick: bool) -> Report {
    let (n, steps) = if quick { (40, 600) } else { (100, 3_000) };
    let load = 1.1;
    let subtypes: &[u8] = &[1, 2, 4, 8];
    // The hybrid baseline gets its dedicated fraction tuned per workload
    // (best of a grid) — the strongest version of the paper's caveat.
    let fractions = [0.25, 0.3, 0.35, 0.4, 0.5];
    let strategies = [
        ("uniform-random", Strategy::UniformRandom),
        ("dedicated-best", Strategy::UniformRandom), // placeholder, handled below
        ("paired-quantum", Strategy::quantum_ideal()),
    ];

    let mut header: Vec<String> = vec!["strategy \\ subtypes".into()];
    header.extend(subtypes.iter().map(|k| k.to_string()));
    let mut t = Table::new(header);

    // One pool point per (strategy, subtype-count) cell; the tuned
    // dedicated baseline runs its fraction grid inside its own point.
    // Seeds are unchanged from the sequential version, so the table is
    // identical at any worker count.
    let points = runtime::grid2(strategies.len(), subtypes.len());
    let cells = runtime::par_map(&points, |_, &(si, ki)| {
        let (name, strategy) = strategies[si];
        let k = subtypes[ki];
        let config = SimConfig {
            n_balancers: n,
            n_servers: (n as f64 / load).round() as usize,
            timesteps: steps,
            warmup: steps / 4,
            discipline: Discipline::PaperPairedC,
        };
        if name == "dedicated-best" {
            // Tune the dedicated fraction per subtype count.
            fractions
                .iter()
                .enumerate()
                .map(|(fi, &f)| {
                    let mut rng = StdRng::seed_from_u64(crate::point_seed(
                        7,
                        100 + fi as u64,
                        ki as u64,
                    ));
                    let mut workload = BernoulliWorkload::new(0.5, k);
                    run_simulation(
                        config,
                        Strategy::DedicatedServers {
                            dedicated_fraction: f,
                        },
                        &mut workload,
                        &mut rng,
                    )
                    .avg_queue_len
                })
                .fold(f64::INFINITY, f64::min)
        } else {
            let mut rng = StdRng::seed_from_u64(crate::point_seed(7, si as u64, ki as u64));
            let mut workload = BernoulliWorkload::new(0.5, k);
            run_simulation(config, strategy, &mut workload, &mut rng).avg_queue_len
        }
    });
    let mut report = Report::new("hybrid", 7);
    for (si, (name, _)) in strategies.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for ki in 0..subtypes.len() {
            let q = cells[si * subtypes.len() + ki];
            row.push(f2(q));
            report.point(Json::obj([
                ("part", Json::str("subtypes")),
                ("strategy", Json::str(*name)),
                ("subtypes", Json::uint(subtypes[ki] as u64)),
                ("avg_queue_len", Json::num(q)),
            ]));
        }
        t.row(row);
    }

    // Part 2: a bursty workload (Markov-modulated C fraction, phases of
    // p_C = 0.85 / 0.15). A static partition tuned for the average mix
    // suffers during phases; per-round quantum pairing adapts.
    let mut t2 = Table::new(vec!["strategy (bursty workload)", "avg queue"]);
    let bursty_rows = [
        ("uniform-random", Strategy::UniformRandom),
        (
            "dedicated-0.35 (tuned for avg)",
            Strategy::DedicatedServers {
                dedicated_fraction: 0.35,
            },
        ),
        (
            "dedicated-0.50 (mis-tuned)",
            Strategy::DedicatedServers {
                dedicated_fraction: 0.5,
            },
        ),
        ("paired-quantum", Strategy::quantum_ideal()),
    ];
    let bursty_queues = runtime::par_map(&bursty_rows, |bi, (_, strategy)| {
        let config = SimConfig {
            n_balancers: n,
            n_servers: (n as f64 / load).round() as usize,
            timesteps: steps,
            warmup: steps / 4,
            discipline: Discipline::PaperPairedC,
        };
        let mut rng = StdRng::seed_from_u64(crate::point_seed(7, 200 + bi as u64, 0));
        let mut workload = BurstyWorkload::new(0.85, 0.15, 0.002);
        run_simulation(config, *strategy, &mut workload, &mut rng).avg_queue_len
    });
    for ((name, _), q) in bursty_rows.iter().zip(&bursty_queues) {
        t2.row(vec![name.to_string(), f2(*q)]);
        report.point(Json::obj([
            ("part", Json::str("bursty")),
            ("strategy", Json::str(*name)),
            ("avg_queue_len", Json::num(*q)),
        ]));
    }

    let bursty_mistuned = bursty_queues[2];
    let bursty_quantum = bursty_queues[3];
    report.scalar("bursty.mistuned_dedicated", bursty_mistuned);
    report.scalar("bursty.quantum", bursty_quantum);

    // Acceptance: under the bursty workload the statically partitioned
    // baseline must collapse relative to per-round quantum pairing — the
    // caveat's point (paper calibration: ~167 vs ~4.6).
    report.check(
        "bursty-hybrid-fragile",
        bursty_quantum < bursty_mistuned,
        format!("quantum {bursty_quantum:.2} < mis-tuned dedicated {bursty_mistuned:.2}"),
    );

    report.text = format!(
        "E7 — §4.1 caveat: hybrid dedicated-server baseline vs C-subtype count\n\
         (avg queue at load {load}, N = {n}; servers pair only same-subtype C)\n\n{}\n\
         E7b — the same hybrid under a BURSTY workload (phased C fraction\n\
         0.85/0.15, load {load}): static partitions are fragile to mix shift;\n\
         quantum pairing adapts per round.\n\n{}",
        t.render(),
        t2.render()
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_covers_all_strategies() {
        let report = super::run(true);
        let out = format!("{report}");
        assert!(out.contains("dedicated-best"));
        assert!(out.contains("paired-quantum"));
        assert!(out.contains("uniform-random"));
        assert!(report.passed(), "{out}");
    }
}
