//! One module per paper exhibit. See DESIGN.md §4 for the experiment
//! index mapping each module to the figure/claim it regenerates.

pub mod chsh_exp;
pub mod ecmp_exp;
pub mod faults_exp;
pub mod fig3;
pub mod fig4;
pub mod ghz_exp;
pub mod hybrid_exp;
pub mod noise_exp;
pub mod pipeline_exp;
pub mod scale_exp;
pub mod serve_exp;
pub mod timing_exp;
pub mod topology_exp;

/// All experiment names, in the order `repro all` runs them.
pub const ALL: &[&str] = &[
    "chsh",
    "fig3",
    "fig3-vertices",
    "fig4",
    "fig4-scaling",
    "fig4-disciplines",
    "fig4-faults",
    "fig4-scale",
    "ecmp",
    "timing",
    "noise",
    "hybrid",
    "pipeline",
    "ghz",
    "topology",
    "serve",
];

/// Dispatches one experiment by name, returning its typed report.
pub fn run(name: &str, quick: bool) -> Option<crate::Report> {
    Some(match name {
        "chsh" => chsh_exp::run(quick),
        "fig3" => fig3::run(quick),
        "fig3-vertices" => fig3::run_vertices(quick),
        "fig4" => fig4::run(quick),
        "fig4-scaling" => fig4::run_scaling(quick),
        "fig4-disciplines" => fig4::run_disciplines(quick),
        "fig4-faults" => faults_exp::run(quick),
        "fig4-scale" => scale_exp::run(quick),
        "ecmp" => ecmp_exp::run(quick),
        "timing" => timing_exp::run(quick),
        "noise" => noise_exp::run(quick),
        "hybrid" => hybrid_exp::run(quick),
        "pipeline" => pipeline_exp::run(quick),
        "ghz" => ghz_exp::run(quick),
        "topology" => topology_exp::run(quick),
        "serve" => serve_exp::run(quick),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_names_dispatch() {
        for name in super::ALL {
            // Don't actually run (expensive): just confirm dispatch wiring
            // by checking the unknown-name path distinctly.
            assert!(super::ALL.contains(name));
        }
        assert!(super::run("no-such-experiment", true).is_none());
    }
}
