//! Experiment E3: the CHSH numbers quoted in §2.
//!
//! Classical optimum 0.75; quantum optimum cos²(π/8) ≈ 0.8536 with the
//! stated angles (θ_A ∈ {0, π/4}, θ_B ∈ {π/8, −π/8}); uniform marginals.
//! Also validates the XOR-game solvers against the known CHSH values and
//! reports the 3-player GHZ game (quantum wins with certainty).

use crate::report::Report;
use crate::table::{f4, Table};
use games::chsh::{ChshGame, ClassicalChshStrategy, QuantumChshStrategy};
use games::game::{empirical_win_rate, IndependentRandomStrategy};
use games::multiparty;
use games::{ChshVariant, XorGame};
use obs::json::Json;
use qmath::stats::wilson;

/// Runs the CHSH validation experiment.
///
/// The six Monte-Carlo rows are independent, so they run concurrently on
/// the shared pool, each on its own deterministic seed stream.
pub fn run(quick: bool) -> Report {
    let rounds = if quick { 20_000 } else { 500_000 };
    let game = ChshGame::standard();
    let xor = XorGame::chsh();

    let tasks: Vec<usize> = (0..6).collect();
    let mc = runtime::par_sweep(crate::point_seed(3, 0, 0), &tasks, |_, &task, rng| match task {
        0 => empirical_win_rate(
            &game,
            &mut ClassicalChshStrategy::optimal(ChshVariant::Standard),
            rounds,
            rng,
        ),
        1 => empirical_win_rate(&game, &mut IndependentRandomStrategy, rounds, rng),
        2 => empirical_win_rate(&game, &mut QuantumChshStrategy::ideal(), rounds, rng),
        3 => empirical_win_rate(
            &ChshGame::flipped(),
            &mut QuantumChshStrategy::ideal_flipped(),
            rounds,
            rng,
        ),
        4 => xor.quantum_solution(8, rng).value,
        _ => multiparty::quantum_win_rate(if quick { 2_000 } else { 20_000 }, rng),
    });
    let (classical, independent, quantum, flipped, solver_quantum, ghz_quantum) =
        (mc[0], mc[1], mc[2], mc[3], mc[4], mc[5]);

    let solver_classical = xor
        .classical_value()
        .expect("CHSH is far below the enumeration limit");
    let solver_pgd = (1.0 + xor.quantum_bias_pgd(if quick { 150 } else { 500 })) / 2.0;

    let ghz_classical = multiparty::classical_optimum();
    let ghz_rounds = if quick { 2_000 } else { 20_000 };

    let mut report = Report::new("chsh", 3);
    let mut t = Table::new(vec!["quantity", "measured", "theory"]);
    t.row(vec!["CHSH independent-random".into(), f4(independent), f4(0.5)]);
    t.row(vec![
        "CHSH classical optimal".into(),
        f4(classical),
        f4(games::CHSH_CLASSICAL_VALUE),
    ]);
    t.row(vec![
        "CHSH quantum (paper angles)".into(),
        f4(quantum),
        f4(games::chsh_quantum_value()),
    ]);
    t.row(vec![
        "CHSH flipped (load-balancing)".into(),
        f4(flipped),
        f4(games::chsh_quantum_value()),
    ]);
    t.row(vec![
        "XOR solver classical (exact)".into(),
        f4(solver_classical),
        f4(0.75),
    ]);
    t.row(vec![
        "XOR solver quantum (alternating)".into(),
        f4(solver_quantum),
        f4(games::chsh_quantum_value()),
    ]);
    t.row(vec![
        "XOR solver quantum (PGD x-check)".into(),
        f4(solver_pgd),
        f4(games::chsh_quantum_value()),
    ]);
    t.row(vec![
        "GHZ 3-player classical optimal".into(),
        f4(ghz_classical),
        f4(0.75),
    ]);
    t.row(vec![
        "GHZ 3-player quantum".into(),
        f4(ghz_quantum),
        f4(1.0),
    ]);

    // Structured payload: every row as a (quantity, measured, theory)
    // point; Wilson intervals for the Monte-Carlo win rates (counts are
    // reconstructed exactly from rate × rounds).
    let wilson_of = |rate: f64, n: u64| wilson((rate * n as f64).round() as u64, n);
    let mc_rows: &[(&str, f64, f64, u64)] = &[
        ("independent_random", independent, 0.5, rounds as u64),
        ("classical_optimal", classical, games::CHSH_CLASSICAL_VALUE, rounds as u64),
        ("quantum_paper_angles", quantum, games::chsh_quantum_value(), rounds as u64),
        ("quantum_flipped", flipped, games::chsh_quantum_value(), rounds as u64),
        ("ghz_quantum", ghz_quantum, 1.0, ghz_rounds as u64),
    ];
    for &(name, measured, theory, n) in mc_rows {
        report.interval(name, wilson_of(measured, n));
        report.point(Json::obj([
            ("quantity", Json::str(name)),
            ("measured", Json::num(measured)),
            ("theory", Json::num(theory)),
            ("rounds", Json::uint(n)),
        ]));
    }
    for (name, measured, theory) in [
        ("xor_solver_classical", solver_classical, 0.75),
        ("xor_solver_quantum", solver_quantum, games::chsh_quantum_value()),
        ("xor_solver_pgd", solver_pgd, games::chsh_quantum_value()),
        ("ghz_classical", ghz_classical, 0.75),
    ] {
        report.point(Json::obj([
            ("quantity", Json::str(name)),
            ("measured", Json::num(measured)),
            ("theory", Json::num(theory)),
        ]));
    }
    report.scalar("chsh_quantum_measured", quantum);
    report.scalar("chsh_classical_exact", solver_classical);

    // Acceptance: the measured quantum win rate must sit at cos²(π/8)
    // within Monte-Carlo noise, and strictly above the classical optimum.
    let expect = games::chsh_quantum_value();
    report.check(
        "quantum-value",
        (quantum - expect).abs() < 0.02,
        format!("|{quantum:.4} − {expect:.4}| < 0.02"),
    );
    report.check(
        "quantum-beats-classical",
        quantum > games::CHSH_CLASSICAL_VALUE,
        format!("{quantum:.4} > {:.2}", games::CHSH_CLASSICAL_VALUE),
    );

    report.text = format!(
        "E3 — CHSH & GHZ game values (§2 text claims), {rounds} rounds/row\n\n{}",
        t.render()
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn chsh_experiment_runs_and_matches() {
        let report = super::run(true);
        let out = format!("{report}");
        assert!(out.contains("CHSH quantum"));
        // The quantum row must show ≈ 0.85.
        assert!(out.contains("0.85"), "{out}");
        assert!(report.passed(), "{out}");
    }
}
