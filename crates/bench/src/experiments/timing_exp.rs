//! Experiment E5: the Figure 2 timing argument — decision latency with
//! pre-shared entanglement vs classical coordination, with the
//! availability number coming from an actual simulated distribution
//! pipeline (SPDC source → fiber → QNIC buffers).

use crate::report::Report;
use crate::table::Table;
use obs::json::Json;
use qmath::stats::wilson;
use qnet::{
    DecisionLatencyModel, DistributorConfig, EntanglementDistributor, SimTime,
};
use qnet::timing::run_timing_experiment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Runs the timing experiment.
pub fn run(quick: bool) -> Report {
    let inputs = if quick { 5_000 } else { 100_000 };
    let mut rng = StdRng::seed_from_u64(crate::point_seed(5, 0, 0));

    // First, measure real pair availability from the pipeline at a
    // demanding decision rate (one decision per 20 µs ≈ 50k/s against a
    // 100k pairs/s source).
    let mut dist = EntanglementDistributor::new(DistributorConfig::typical(), &mut rng);
    let mut now = SimTime::ZERO;
    let step = Duration::from_micros(20);
    let decisions = if quick { 2_000 } else { 20_000 };
    // Availability only needs consumption accounting: run the Werner
    // kernel path unless the exact-oracle escape hatch is set.
    for _ in 0..decisions {
        now += step;
        if qsim::werner::exact_qsim() {
            let _ = dist.take_pair(now);
        } else {
            let _ = dist.take_werner(now);
        }
    }
    let availability = dist.stats().availability();

    let rtt_dc = Duration::from_micros(50); // intra-datacenter RTT
    let rtt_cross = Duration::from_millis(1); // cross-AZ RTT
    let models = [
        DecisionLatencyModel::LocalRandom,
        DecisionLatencyModel::QuantumPreShared { availability },
        DecisionLatencyModel::ClassicalCoordinate { rtt: rtt_dc },
        DecisionLatencyModel::ClassicalCoordinate { rtt: rtt_cross },
        DecisionLatencyModel::CentralScheduler {
            rtt: rtt_dc,
            scheduler_delay: Duration::from_micros(20),
        },
    ];

    // Each latency model runs concurrently on its own seed stream.
    let results = runtime::par_sweep(crate::point_seed(5, 1, 0), &models, |_, &m, rng| {
        run_timing_experiment(m, inputs, Duration::from_micros(20), rng)
    });

    let mut report = Report::new("timing", 5);
    let mut t = Table::new(vec![
        "model",
        "mean latency",
        "p99 latency",
        "coordinated",
    ]);
    let mut quantum_mean_ns = f64::NAN;
    for (&m, r) in models.iter().zip(&results) {
        let label = match m {
            DecisionLatencyModel::ClassicalCoordinate { rtt } if rtt == rtt_cross => {
                "classical-rtt (cross-AZ)".to_string()
            }
            DecisionLatencyModel::ClassicalCoordinate { .. } => {
                "classical-rtt (intra-DC)".to_string()
            }
            _ => r.model.to_string(),
        };
        if matches!(m, DecisionLatencyModel::QuantumPreShared { .. }) {
            quantum_mean_ns = r.mean_latency.as_nanos() as f64;
        }
        t.row(vec![
            label.clone(),
            format!("{:?}", r.mean_latency),
            format!("{:?}", r.p99_latency),
            format!("{:.1}%", 100.0 * r.coordinated_fraction),
        ]);
        report.interval(
            format!("coordinated.{label}"),
            wilson(
                (r.coordinated_fraction * inputs as f64).round() as u64,
                inputs as u64,
            ),
        );
        report.point(Json::obj([
            ("model", Json::str(&label)),
            ("mean_latency_ns", Json::uint(r.mean_latency.as_nanos() as u64)),
            ("p99_latency_ns", Json::uint(r.p99_latency.as_nanos() as u64)),
            ("coordinated_fraction", Json::num(r.coordinated_fraction)),
            ("inputs", Json::uint(inputs as u64)),
        ]));
    }

    report.scalar("availability", availability);
    report.scalar("quantum.mean_latency_ns", quantum_mean_ns);

    // Acceptance: the simulated SPDC pipeline must keep pairs available
    // for the vast majority of decisions (paper quotes ≈ 99.6%), and the
    // pre-shared model adds zero latency by construction.
    report.check(
        "high-availability",
        availability > 0.9,
        format!("availability {:.3} > 0.9", availability),
    );
    report.check(
        "quantum-zero-latency",
        quantum_mean_ns == 0.0,
        format!("quantum mean latency {quantum_mean_ns} ns == 0"),
    );

    report.text = format!(
        "E5 — Figure 2: decision latency (pairs pre-shared by a simulated \
         SPDC pipeline; measured availability {:.1}% at 50k decisions/s)\n\n{}\n\
         The quantum model coordinates {:.1}% of decisions at ZERO added \
         latency;\nevery classical coordination scheme pays ≥ 1 RTT.\n",
        availability * 100.0,
        t.render(),
        availability * 100.0
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn quantum_row_has_zero_latency_and_high_availability() {
        let report = super::run(true);
        let out = format!("{report}");
        assert!(out.contains("quantum-preshared"));
        assert!(out.contains("0ns") || out.contains("0s"), "{out}");
        assert!(report.passed(), "{out}");
    }
}
