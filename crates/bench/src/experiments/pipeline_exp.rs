//! Experiment E8 (extension): the Figure 4 simulation with the hardware
//! in the loop.
//!
//! Instead of abstracting the quantum substrate into (availability,
//! visibility) numbers, each balancer pair here owns a live simulated
//! distribution pipeline — SPDC source, fiber, QNICs with finite memory —
//! and every coordination round consumes an actual buffered pair with its
//! accumulated storage decoherence. The sweep shows how much source rate
//! the paper's architecture actually needs before the end-to-end benefit
//! matches the ideal abstraction (§3 quotes 10⁴–10⁷ pairs/s for SPDC).

use crate::report::Report;
use crate::table::{f2, f4, Table};
use loadbalance::pipeline::PipelinePairedQuantum;
use loadbalance::server::Discipline;
use loadbalance::sim::{run_simulation, run_simulation_with, SimConfig};
use loadbalance::strategy::Strategy;
use loadbalance::task::BernoulliWorkload;
use obs::json::Json;
use qnet::{ConsumePolicy, DistributorConfig, EprSource, FiberLink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Runs the hardware-in-the-loop sweep.
pub fn run(quick: bool) -> Report {
    let (n, steps) = if quick { (40, 600) } else { (100, 2_000) };
    let load = 1.15;
    let config = SimConfig {
        n_balancers: n,
        n_servers: (n as f64 / load).round() as usize,
        timesteps: steps,
        warmup: steps / 4,
        discipline: Discipline::PaperPairedC,
    };
    let timestep = Duration::from_micros(100);

    let mut t = Table::new(vec![
        "source rate (pairs/s)",
        "quantum rounds",
        "CC co-location",
        "avg queue",
    ]);

    // Baselines — each arm on its own seed so both run concurrently.
    let baselines = runtime::par_map(&[0usize, 1], |_, &arm| {
        let mut rng = StdRng::seed_from_u64(crate::point_seed(8, 0, arm as u64));
        let strategy = if arm == 0 { Strategy::UniformRandom } else { Strategy::quantum_ideal() };
        let r = run_simulation(config, strategy, &mut BernoulliWorkload::paper(), &mut rng);
        (r.avg_queue_len, r.cc_colocation_rate)
    });
    t.row(vec![
        "— classical random".to_string(),
        "-".into(),
        "-".into(),
        f2(baselines[0].0),
    ]);
    t.row(vec![
        "— ideal quantum".to_string(),
        "100.0%".into(),
        f4(baselines[1].1),
        f2(baselines[1].0),
    ]);

    // The demand is 1 pair per 100 µs per balancer pair = 10⁴ pairs/s.
    let rates = [1e3, 3e3, 1e4, 3e4, 1e5, 1e6];
    let rate_rows = runtime::par_map(&rates, |i, &rate| {
        let mut rng = StdRng::seed_from_u64(crate::point_seed(8, 1, i as u64));
        let pipeline = DistributorConfig {
            source: EprSource::new(rate, 0.98),
            link_a: FiberLink::new(0.5),
            link_b: FiberLink::new(0.5),
            qnic_capacity: 16,
            memory_lifetime: Duration::from_micros(100),
            max_age: Duration::from_micros(80),
            consume_policy: ConsumePolicy::FreshestFirst,
            faults: qnet::FaultPlan::none(),
            emission: qnet::EmissionMode::Batched,
        };
        let mut strat = PipelinePairedQuantum::new(
            config.n_balancers,
            config.n_servers,
            pipeline,
            timestep,
            &mut rng,
        );
        let r = run_simulation_with(
            config,
            &mut strat,
            &mut BernoulliWorkload::paper(),
            &mut rng,
        );
        (
            strat.stats().quantum_fraction(),
            r.cc_colocation_rate,
            r.avg_queue_len,
        )
    });
    let mut report = Report::new("pipeline", 8);
    report.point(Json::obj([
        ("arm", Json::str("classical-random")),
        ("avg_queue_len", Json::num(baselines[0].0)),
        ("cc_colocation_rate", Json::num(baselines[0].1)),
    ]));
    report.point(Json::obj([
        ("arm", Json::str("ideal-quantum")),
        ("avg_queue_len", Json::num(baselines[1].0)),
        ("cc_colocation_rate", Json::num(baselines[1].1)),
    ]));
    for (&rate, &(qf, cc, q)) in rates.iter().zip(&rate_rows) {
        t.row(vec![
            format!("{rate:.0}"),
            format!("{:.1}%", 100.0 * qf),
            f4(cc),
            f2(q),
        ]);
        report.point(Json::obj([
            ("arm", Json::str("pipeline")),
            ("source_rate", Json::num(rate)),
            ("quantum_fraction", Json::num(qf)),
            ("cc_colocation_rate", Json::num(cc)),
            ("avg_queue_len", Json::num(q)),
        ]));
    }

    let qf_starved = rate_rows[0].0;
    let qf_saturated = rate_rows[rates.len() - 1].0;
    report.scalar("quantum_fraction.at_1e3", qf_starved);
    report.scalar("quantum_fraction.at_1e6", qf_saturated);
    report.scalar("classical.avg_queue_len", baselines[0].0);
    report.scalar("ideal_quantum.avg_queue_len", baselines[1].0);

    // Acceptance: demand is 10⁴ pairs/s per pair, so a 10³ pairs/s source
    // must starve the strategy and a 10⁶ source must saturate it.
    report.check(
        "starved-at-1e3",
        qf_starved < 0.5,
        format!("quantum fraction {qf_starved:.3} < 0.5 at 10³ pairs/s"),
    );
    report.check(
        "saturated-at-1e6",
        qf_saturated > 0.9,
        format!("quantum fraction {qf_saturated:.3} > 0.9 at 10⁶ pairs/s"),
    );

    report.text = format!(
        "E8 — hardware-in-the-loop Figure 4 (load {load}, N = {n}, one pipeline \
         per balancer pair,\ndemand 10⁴ pairs/s/pair, source visibility 0.98, \
         τ = 100 µs):\n\n{}",
        t.render()
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_spans_starved_to_saturated() {
        let report = super::run(true);
        let out = format!("{report}");
        assert!(out.contains("ideal quantum"));
        assert!(out.contains("1000"), "starved row present: {out}");
        assert!(out.contains("1000000"), "saturated row present");
        assert!(report.passed(), "{out}");
    }
}
