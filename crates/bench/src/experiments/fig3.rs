//! Experiment E1: Figure 3 — probability that a random XOR game on a
//! 5-vertex affinity graph has a quantum advantage, as a function of the
//! probability that an edge is exclusive.
//!
//! The paper computed this with the Toqito Python package; here the
//! quantum values come from this workspace's own solver
//! (`games::xor::quantum_solution`). E1b (the caption's claim that the
//! advantage probability grows with vertex count) is `run_vertices`.

use crate::report::Report;
use crate::table::{f4, Table};
use games::graph::advantage_count;
use obs::json::Json;
use qmath::stats::wilson;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Advantage-detection tolerance: safely above solver noise (~1e-6),
/// far below real advantages (≥ 1e-2 in this family).
const TOL: f64 = 1e-4;

/// Figure 3: 5-vertex sweep over the edge-exclusivity probability.
pub fn run(quick: bool) -> Report {
    let samples = if quick { 40 } else { 400 };
    let ps: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let results = parallel_sweep_counts(&ps, 5, samples);

    let mut report = Report::new("fig3", 10);
    let mut t = Table::new(vec!["P(edge exclusive)", "P(quantum advantage)"]);
    for (p, count) in &results {
        let ci = wilson(*count as u64, samples as u64);
        t.row(vec![f4(*p), ci.display()]);
        report.interval(format!("advantage.p{p:.1}"), ci);
        report.point(Json::obj([
            ("p_exclusive", Json::num(*p)),
            ("advantage_count", Json::uint(*count as u64)),
            ("samples", Json::uint(samples as u64)),
            ("advantage_rate", Json::num(*count as f64 / samples as f64)),
        ]));
    }

    let at = |p: f64| {
        results
            .iter()
            .find(|(q, _)| (q - p).abs() < 1e-9)
            .map(|(_, c)| *c as f64 / samples as f64)
            .unwrap_or(f64::NAN)
    };
    report.scalar("advantage_rate.p0.0", at(0.0));
    report.scalar("advantage_rate.p0.5", at(0.5));

    // Acceptance: all-affinity graphs are trivially classical; the
    // mid-range must show the paper's "most graphs have an advantage".
    report.check(
        "trivial-at-zero",
        at(0.0) == 0.0,
        format!("P(adv | p=0) = {}", at(0.0)),
    );
    report.check(
        "midrange-advantage",
        at(0.5) > 0.5,
        format!("P(adv | p=0.5) = {:.3} > 0.5", at(0.5)),
    );

    report.text = format!(
        "E1 — Figure 3: random XOR games on 5-vertex graphs ({samples} graphs/point)\n\n{}",
        t.render()
    );
    report
}

/// Figure 3 caption claim: advantage probability increases with the
/// number of vertices (at p_exclusive = 0.5).
pub fn run_vertices(quick: bool) -> Report {
    let samples = if quick { 30 } else { 250 };
    let ns = [3usize, 4, 5, 6, 7];
    let results = runtime::par_map(&ns, |i, &n| {
        let mut rng = StdRng::seed_from_u64(crate::point_seed(11, i as u64, 0));
        (n, advantage_count(n, 0.5, samples, TOL, &mut rng))
    });

    let mut report = Report::new("fig3-vertices", 11);
    let mut t = Table::new(vec!["vertices", "P(quantum advantage)"]);
    for (n, count) in &results {
        let ci = wilson(*count as u64, samples as u64);
        t.row(vec![n.to_string(), ci.display()]);
        report.interval(format!("advantage.n{n}"), ci);
        report.point(Json::obj([
            ("vertices", Json::uint(*n as u64)),
            ("advantage_count", Json::uint(*count as u64)),
            ("samples", Json::uint(samples as u64)),
            ("advantage_rate", Json::num(*count as f64 / samples as f64)),
        ]));
    }

    let rate = |n: usize| {
        results
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, c)| *c as f64 / samples as f64)
            .unwrap_or(f64::NAN)
    };
    report.scalar("advantage_rate.n3", rate(3));
    report.scalar("advantage_rate.n7", rate(7));

    // Paper calibration: P(adv) ≈ 0.54 at n=3 and ≈ 0.85 at n=7, so the
    // growth across the range must be clear even at quick budgets.
    report.check(
        "grows-with-vertices",
        rate(7) > rate(3),
        format!("P(adv | n=7) = {:.3} > P(adv | n=3) = {:.3}", rate(7), rate(3)),
    );
    report.check(
        "majority-at-seven",
        rate(7) >= 0.5,
        format!("P(adv | n=7) = {:.3} ≥ 0.5", rate(7)),
    );

    report.text = format!(
        "E1b — Figure 3 caption: advantage probability vs vertex count \
         (p_exclusive = 0.5, {samples} graphs/point)\n\n{}",
        t.render()
    );
    report
}

/// Parallel sweep over exclusivity probabilities, returning raw counts.
/// Seeds are a function of the point index, so the output is identical
/// at any worker count.
fn parallel_sweep_counts(ps: &[f64], n_vertices: usize, samples: usize) -> Vec<(f64, usize)> {
    runtime::par_map(ps, |i, &p| {
        let mut rng = StdRng::seed_from_u64(crate::point_seed(10, i as u64, 0));
        (p, advantage_count(n_vertices, p, samples, TOL, &mut rng))
    })
}

/// Fractional version used by the shape tests.
#[cfg(test)]
fn parallel_sweep(ps: &[f64], n_vertices: usize, samples: usize) -> Vec<(f64, f64)> {
    parallel_sweep_counts(ps, n_vertices, samples)
        .into_iter()
        .map(|(p, c)| (p, c as f64 / samples as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_matches_paper() {
        // p = 0 must give zero advantage probability; the mid-range must
        // be clearly positive ("most graphs ... exhibit a quantum
        // advantage").
        let results = parallel_sweep(&[0.0, 0.4, 0.6], 5, 25);
        assert_eq!(results[0].1, 0.0, "all-affinity graphs are trivial");
        assert!(
            results[1].1 > 0.5 || results[2].1 > 0.5,
            "mid-range advantage too rare: {results:?}"
        );
    }

    #[test]
    fn reports_render() {
        let report = run(true);
        let out = format!("{report}");
        assert!(out.contains("Figure 3"));
        assert!(out.lines().count() > 10);
        assert!(report.passed(), "{out}");
        assert_eq!(report.points.len(), 11);
    }
}
