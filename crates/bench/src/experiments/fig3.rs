//! Experiment E1: Figure 3 — probability that a random XOR game on a
//! 5-vertex affinity graph has a quantum advantage, as a function of the
//! probability that an edge is exclusive.
//!
//! The paper computed this with the Toqito Python package; here the
//! quantum values come from this workspace's own solver
//! (`games::xor::quantum_solution_with`), routed through the
//! canonicalizing value cache (`games::cache`): graphs for every sweep
//! point are drawn first from per-point deterministic streams, then the
//! flattened game list is solved by one `solve_batch` fan-out. Many
//! labelings coincide up to vertex relabeling/global sign, so the cache
//! collapses them to one solve each (`games.xor.cache.hits` in the obs
//! snapshot counts the wins). Values are a pure function of each game's
//! canonical form, so reports are byte-identical at any thread count and
//! with the cache disabled (`QNLG_XOR_CACHE=0`). E1b (the caption's claim
//! that the advantage probability grows with vertex count) is
//! `run_vertices`, extended beyond the paper's 5 vertices to n = 8 —
//! the larger families the cache + solver wins pay for.

use crate::report::Report;
use crate::table::{f4, Table};
use games::cache;
use games::graph::sample_games;
use games::{SolverOpts, XorGame};
use obs::json::Json;
use qmath::stats::wilson;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Advantage-detection tolerance: safely above solver noise (~1e-6),
/// far below real advantages (≥ 1e-2 in this family).
const TOL: f64 = 1e-4;

/// Draws per-point graph batches from per-point deterministic streams,
/// solves the flattened list through the value cache on `threads`
/// workers, and returns each point's advantage count.
///
/// Per-point seeds depend only on `(seed_domain, point index)` and game
/// values only on canonical forms, so counts are invariant to worker
/// count, batch order, and cache state.
fn advantage_counts<P: Sync>(
    threads: usize,
    seed_domain: u64,
    points: &[P],
    samples: usize,
    games_of: impl Fn(&P, &mut StdRng) -> Vec<XorGame>,
) -> Vec<usize> {
    let games: Vec<XorGame> = points
        .iter()
        .enumerate()
        .flat_map(|(i, p)| {
            let mut rng = StdRng::seed_from_u64(crate::point_seed(seed_domain, i as u64, 0));
            games_of(p, &mut rng)
        })
        .collect();
    let values = cache::solve_batch_threads(threads, &games, &SolverOpts::default());
    values
        .chunks(samples)
        .map(|chunk| {
            chunk
                .iter()
                .map(|r| {
                    r.as_ref()
                        .expect("graph games stay below the enumeration limit")
                })
                .filter(|v| v.has_advantage(TOL))
                .count()
        })
        .collect()
}

/// Figure 3: 5-vertex sweep over the edge-exclusivity probability.
pub fn run(quick: bool) -> Report {
    run_with_threads(runtime::thread_count(), quick)
}

/// [`run`] with an explicit worker count (determinism tests).
pub fn run_with_threads(threads: usize, quick: bool) -> Report {
    let samples = if quick { 40 } else { 400 };
    let ps: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let counts = advantage_counts(threads, 10, &ps, samples, |&p, rng| {
        sample_games(5, p, samples, rng)
    });
    let results: Vec<(f64, usize)> = ps.iter().copied().zip(counts).collect();

    let mut report = Report::new("fig3", 10);
    let mut t = Table::new(vec!["P(edge exclusive)", "P(quantum advantage)"]);
    for (p, count) in &results {
        let ci = wilson(*count as u64, samples as u64);
        t.row(vec![f4(*p), ci.display()]);
        report.interval(format!("advantage.p{p:.1}"), ci);
        report.point(Json::obj([
            ("p_exclusive", Json::num(*p)),
            ("advantage_count", Json::uint(*count as u64)),
            ("samples", Json::uint(samples as u64)),
            ("advantage_rate", Json::num(*count as f64 / samples as f64)),
        ]));
    }

    let at = |p: f64| {
        results
            .iter()
            .find(|(q, _)| (q - p).abs() < 1e-9)
            .map(|(_, c)| *c as f64 / samples as f64)
            .unwrap_or(f64::NAN)
    };
    report.scalar("advantage_rate.p0.0", at(0.0));
    report.scalar("advantage_rate.p0.5", at(0.5));

    // Acceptance: all-affinity graphs are trivially classical; the
    // mid-range must show the paper's "most graphs have an advantage".
    report.check(
        "trivial-at-zero",
        at(0.0) == 0.0,
        format!("P(adv | p=0) = {}", at(0.0)),
    );
    report.check(
        "midrange-advantage",
        at(0.5) > 0.5,
        format!("P(adv | p=0.5) = {:.3} > 0.5", at(0.5)),
    );

    report.text = format!(
        "E1 — Figure 3: random XOR games on 5-vertex graphs ({samples} graphs/point)\n\n{}",
        t.render()
    );
    report
}

/// Figure 3 caption claim: advantage probability increases with the
/// number of vertices (at p_exclusive = 0.5).
pub fn run_vertices(quick: bool) -> Report {
    run_vertices_with_threads(runtime::thread_count(), quick)
}

/// [`run_vertices`] with an explicit worker count (determinism tests).
pub fn run_vertices_with_threads(threads: usize, quick: bool) -> Report {
    let samples = if quick { 30 } else { 250 };
    let ns = [3usize, 4, 5, 6, 7, 8];
    let counts = advantage_counts(threads, 11, &ns, samples, |&n, rng| {
        sample_games(n, 0.5, samples, rng)
    });
    let results: Vec<(usize, usize)> = ns.iter().copied().zip(counts).collect();

    let mut report = Report::new("fig3-vertices", 11);
    let mut t = Table::new(vec!["vertices", "P(quantum advantage)"]);
    for (n, count) in &results {
        let ci = wilson(*count as u64, samples as u64);
        t.row(vec![n.to_string(), ci.display()]);
        report.interval(format!("advantage.n{n}"), ci);
        report.point(Json::obj([
            ("vertices", Json::uint(*n as u64)),
            ("advantage_count", Json::uint(*count as u64)),
            ("samples", Json::uint(samples as u64)),
            ("advantage_rate", Json::num(*count as f64 / samples as f64)),
        ]));
    }

    let rate = |n: usize| {
        results
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, c)| *c as f64 / samples as f64)
            .unwrap_or(f64::NAN)
    };
    report.scalar("advantage_rate.n3", rate(3));
    report.scalar("advantage_rate.n7", rate(7));
    report.scalar("advantage_rate.n8", rate(8));

    // Paper calibration: P(adv) ≈ 0.54 at n=3 and ≈ 0.85 at n=7, so the
    // growth across the range must be clear even at quick budgets.
    report.check(
        "grows-with-vertices",
        rate(7) > rate(3),
        format!("P(adv | n=7) = {:.3} > P(adv | n=3) = {:.3}", rate(7), rate(3)),
    );
    report.check(
        "majority-at-seven",
        rate(7) >= 0.5,
        format!("P(adv | n=7) = {:.3} ≥ 0.5", rate(7)),
    );

    report.text = format!(
        "E1b — Figure 3 caption: advantage probability vs vertex count \
         (p_exclusive = 0.5, {samples} graphs/point)\n\n{}",
        t.render()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_matches_paper() {
        // p = 0 must give zero advantage probability; the mid-range must
        // be clearly positive ("most graphs ... exhibit a quantum
        // advantage").
        let ps = [0.0, 0.4, 0.6];
        let samples = 25;
        let counts = advantage_counts(runtime::thread_count(), 10, &ps, samples, |&p, rng| {
            sample_games(5, p, samples, rng)
        });
        assert_eq!(counts[0], 0, "all-affinity graphs are trivial");
        assert!(
            counts[1] * 2 > samples || counts[2] * 2 > samples,
            "mid-range advantage too rare: {counts:?}"
        );
    }

    #[test]
    fn reports_render() {
        let report = run(true);
        let out = format!("{report}");
        assert!(out.contains("Figure 3"));
        assert!(out.lines().count() > 10);
        assert!(report.passed(), "{out}");
        assert_eq!(report.points.len(), 11);
    }
}
