//! Experiment E2d: `fig4-scale` — Figure 4 at production scale.
//!
//! The paper's Figure 4 runs 100 balancers; its §4.1 claim is about
//! *data centers*. This experiment drives the sharded structure-of-arrays
//! engine ([`loadbalance::shard`]) across three orders of magnitude —
//! 10³, 10⁵, and 10⁶ servers at the knee load N/M = 1.2 — for the
//! classical baseline and the quantum CHSH pairing, and reports measured
//! throughput (`perf.tasks_per_sec`) per point alongside the usual queue
//! statistics. Two extra rows exercise the non-i.i.d. arrival models
//! (two-state MMPP bursts and a diurnal cycle) at the middle scale.
//!
//! Determinism: every point's master seed is `point_seed(43, arm, i)`,
//! and the engine is byte-identical at any worker/shard count, so with
//! `with_perf = false` the whole artifact is reproducible bit-for-bit —
//! the determinism tests sweep `QNLG_THREADS` and shard counts over
//! exactly that configuration. Wall-clock throughput is measured per
//! point only when `with_perf = true` (the `repro` path).

use crate::report::{sim_result_to_json, Report};
use crate::table::{f2, Table};
use loadbalance::metrics::SimResult;
use loadbalance::server::Discipline;
use loadbalance::shard::{default_shards, run_scaled, ScaleConfig, ScaleStrategy};
use loadbalance::sim::SimConfig;
use loadbalance::task::ArrivalModel;
use obs::json::Json;

/// The knee load from Figure 4: quantum clearly ahead, classical clearly
/// saturating.
const LOAD: f64 = 1.2;

/// One simulated point, its measured wall clock, and its grid identity.
struct Point {
    n_servers: usize,
    workload: ArrivalModel,
    result: SimResult,
    /// `(elapsed_ns, tasks_per_sec)` when timing was requested.
    perf: Option<(u64, f64)>,
}

fn scale_config(n_servers: usize, workload: ArrivalModel, steps: u64, threads: usize) -> ScaleConfig {
    let sim = SimConfig {
        n_balancers: (n_servers as f64 * LOAD).round() as usize,
        n_servers,
        timesteps: steps,
        warmup: steps / 4,
        discipline: Discipline::PaperPairedC,
    };
    let mut cfg = ScaleConfig::new(sim, workload);
    cfg.threads = threads;
    cfg
}

fn sim_point(
    n_servers: usize,
    workload: ArrivalModel,
    strategy: ScaleStrategy,
    steps: u64,
    threads: usize,
    seed: u64,
    with_perf: bool,
) -> Point {
    let cfg = scale_config(n_servers, workload, steps, threads);
    let start = std::time::Instant::now();
    let result = run_scaled(&cfg, strategy, seed).expect("valid scale configuration");
    let perf = with_perf.then(|| {
        let elapsed_ns = (start.elapsed().as_nanos() as u64).max(1);
        let tasks = cfg.sim.n_balancers as u64 * (cfg.sim.warmup + cfg.sim.timesteps);
        (elapsed_ns, tasks as f64 / (elapsed_ns as f64 / 1e9))
    });
    Point {
        n_servers,
        workload,
        result,
        perf,
    }
}

fn point_json(p: &Point) -> Json {
    let mut point = sim_result_to_json(&p.result);
    if let Json::Obj(pairs) = &mut point {
        pairs.insert(0, ("workload".into(), Json::str(p.workload.label())));
        pairs.insert(0, ("shards".into(), Json::uint(default_shards(p.n_servers) as u64)));
        pairs.insert(0, ("n_servers".into(), Json::uint(p.n_servers as u64)));
        pairs.push((
            "perf".into(),
            match p.perf {
                Some((elapsed_ns, tps)) => Json::obj([
                    ("elapsed_ns", Json::uint(elapsed_ns)),
                    ("tasks_per_sec", Json::num(tps)),
                ]),
                None => Json::Null,
            },
        ));
    }
    point
}

/// The `repro` entry point: current pool width, wall clock measured.
pub fn run(quick: bool) -> Report {
    run_full(runtime::thread_count(), quick, true)
}

/// Worker-count and timing seam for [`run`]. With `with_perf = false`
/// every byte of the report is a pure function of the seeds.
pub fn run_full(threads: usize, quick: bool, with_perf: bool) -> Report {
    let (sizes, steps): (&[usize], u64) = if quick {
        (&[1_000, 10_000], 240)
    } else {
        (&[1_000, 100_000, 1_000_000], 400)
    };
    let arms = [
        ("classical", ScaleStrategy::UniformRandom),
        ("quantum", ScaleStrategy::quantum_ideal()),
    ];

    let mut report = Report::new("fig4-scale", 43);
    let mut t = Table::new(vec![
        "servers",
        "classical q̄",
        "quantum q̄",
        "reduction",
        "classical Mtask/s",
        "quantum Mtask/s",
    ]);

    // The main sweep: sizes × {classical, quantum} under the paper's
    // i.i.d. Bernoulli arrivals. Points run sequentially — each one
    // parallelizes internally across shards — so per-point wall clock is
    // honest.
    let mut grid: Vec<Vec<Point>> = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let row: Vec<Point> = arms
            .iter()
            .enumerate()
            .map(|(a, &(_, strategy))| {
                sim_point(
                    n,
                    ArrivalModel::paper(),
                    strategy,
                    steps,
                    threads,
                    crate::point_seed(43, a as u64, i as u64),
                    with_perf,
                )
            })
            .collect();
        grid.push(row);
    }

    let mtask = |p: &Point| -> String {
        p.perf
            .map(|(_, tps)| format!("{:.1}", tps / 1e6))
            .unwrap_or_else(|| "-".into())
    };
    for row in &grid {
        let (c, q) = (&row[0], &row[1]);
        let (cq, qq) = (c.result.avg_queue_len, q.result.avg_queue_len);
        t.row(vec![
            format!("{}", c.n_servers),
            f2(cq),
            f2(qq),
            if cq > 0.0 {
                format!("{:.0}%", 100.0 * (1.0 - qq / cq))
            } else {
                "-".into()
            },
            mtask(c),
            mtask(q),
        ]);
    }

    // Arrival-model rows: the quantum strategy at the middle scale under
    // bursty (MMPP) and diurnal arrivals. The advantage must survive
    // non-i.i.d. traffic.
    let mid = sizes[sizes.len() / 2];
    let models = [
        ArrivalModel::Mmpp {
            p_c_hot: 0.9,
            p_c_cold: 0.1,
            switch_prob: 0.02,
        },
        ArrivalModel::Diurnal {
            mean: 0.5,
            amplitude: 0.3,
            period: 200,
        },
    ];
    let mut model_points: Vec<Vec<Point>> = Vec::new();
    for (mi, &model) in models.iter().enumerate() {
        let row: Vec<Point> = arms
            .iter()
            .enumerate()
            .map(|(a, &(_, strategy))| {
                sim_point(
                    mid,
                    model,
                    strategy,
                    steps,
                    threads,
                    crate::point_seed(43, 2 + mi as u64, a as u64),
                    with_perf,
                )
            })
            .collect();
        model_points.push(row);
    }

    let mut model_table = Table::new(vec!["workload @ servers", "classical q̄", "quantum q̄"]);
    for row in &model_points {
        model_table.row(vec![
            format!("{} @ {}", row[0].workload.label(), row[0].n_servers),
            f2(row[0].result.avg_queue_len),
            f2(row[1].result.avg_queue_len),
        ]);
    }

    // Per-point payloads and scalars.
    for row in grid.iter().chain(&model_points) {
        for p in row {
            report.point(point_json(p));
        }
    }
    // Scalars stay deterministic: wall-clock throughput lives only in the
    // per-point `perf` objects, which the canonical-digest rules strip,
    // so the artifact keeps the repo-wide byte-identity contract.
    for row in &grid {
        report.scalar(
            format!("reduction.{}", row[0].n_servers),
            1.0 - row[1].result.avg_queue_len / row[0].result.avg_queue_len,
        );
    }

    // Acceptance: the quantum advantage must hold at every scale (the
    // ratio N/M drives Figure 4, so scaling M cannot erase it), and the
    // largest point must actually complete with work done.
    for row in &grid {
        let (c, q) = (&row[0], &row[1]);
        report.check(
            format!("quantum-shorter-at-{}", c.n_servers),
            q.result.avg_queue_len < c.result.avg_queue_len,
            format!(
                "quantum {:.2} < classical {:.2} at {} servers",
                q.result.avg_queue_len, c.result.avg_queue_len, c.n_servers
            ),
        );
    }
    let top = &grid[grid.len() - 1][1];
    report.check(
        "scale-point-completes",
        top.result.served > 0 && top.result.avg_queue_len.is_finite(),
        format!(
            "{} servers: served {} tasks, q̄ {:.2}",
            top.n_servers, top.result.served, top.result.avg_queue_len
        ),
    );
    for row in &model_points {
        report.check(
            format!("advantage-under-{}", row[0].workload.label()),
            row[1].result.avg_queue_len < row[0].result.avg_queue_len,
            format!(
                "{}: quantum {:.2} < classical {:.2}",
                row[0].workload.label(),
                row[1].result.avg_queue_len,
                row[0].result.avg_queue_len
            ),
        );
    }

    report.text = format!(
        "E2d — fig4-scale: Figure 4 at production scale (load N/M = {LOAD}, {steps} steps, \
         sharded SoA engine)\n\n{}\nArrival models at {mid} servers (quantum vs classical):\n\n{}",
        t.render(),
        model_table.render()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_is_thread_invariant_without_perf() {
        let a = run_full(1, true, false);
        let b = run_full(3, true, false);
        assert_eq!(a.text, b.text);
        assert_eq!(
            format!("{:?}", a.scalars),
            format!("{:?}", b.scalars)
        );
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.render(), pb.render());
        }
    }

    #[test]
    fn quick_report_passes_its_own_checks() {
        let r = run_full(2, true, false);
        assert!(r.passed(), "{}", r.check_summary());
    }
}
