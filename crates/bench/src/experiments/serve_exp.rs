//! Experiment E11: the long-lived coordination service (`qnlg-serve`).
//!
//! The paper's deployment story assumes coordination is consulted *per
//! task*, which only works if a decision costs less than the work it
//! places. E11 exercises the service shape of that claim — pre-drawn
//! decision slots carried over lock-free SPSC rings — in two halves:
//!
//! - **Deterministic arms** (canonical payload, byte-identical across
//!   worker counts and obs/trace toggles): a healthy-plane control soak
//!   (quantum tier dominates, governor silent), a fault soak (periodic
//!   link outages trip the governor to the classical tier and recovery
//!   brings it back), and a starvation soak (empty rings degrade inline
//!   — every exhausted decision still answers, split-placed, without
//!   blocking).
//! - **Wall-clock arms** (obs + stderr only, never canonical): timed
//!   fill-then-drain windows feed `qnlg.serve.hot.{decisions,ns}` —
//!   the artifact's `decisions_per_sec` — and per-decision `Instant`
//!   samples feed the `qnlg.serve.decision_latency_ns` histogram behind
//!   `p50_ns`/`p99_ns`/`p999_ns`.
//!
//! Under `repro serve --soak` the wall-clock arms loop until SIGINT;
//! the acceptance checks all come from the deterministic arms, so an
//! interrupted soak still emits a complete, passing artifact.

use crate::report::Report;
use crate::table::{f4, Table};
use obs::json::Json;
use qnet::{FaultKind, FaultPlan, LinkSide, SimTime};
use serve::{measure, ServeConfig, ServiceCore, TIER_CLASSICAL, TIER_INDEPENDENT, TIER_QUANTUM};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Endpoints per arm (two is enough to exercise stream separation while
/// keeping the quick run fast).
const ENDPOINTS: u32 = 2;

/// The arm configuration: smaller rings than production so refills fire
/// visibly often inside the soak budgets.
fn arm_config(master_seed: u64) -> ServeConfig {
    ServeConfig {
        n_servers: 64,
        n_endpoints: ENDPOINTS,
        ring_capacity: 1024,
        low_water: 256,
        refill_batch: 512,
        ..ServeConfig::typical(master_seed)
    }
}

/// Per-endpoint outcome of one deterministic soak.
struct ArmStats {
    endpoint: u32,
    decisions: u64,
    by_tier: [u64; 3],
    exhausted: u64,
    transitions: u64,
    misses: u64,
}

/// Runs one deterministic soak: `per_endpoint` decisions on every
/// endpoint, pumping between rounds, inputs cycling through the CHSH
/// combinations.
fn soak(core: &mut ServiceCore, per_endpoint: u64) -> Vec<ArmStats> {
    for i in 0..per_endpoint {
        for e in 0..ENDPOINTS as usize {
            let _ = core.decide(e, i % 2 == 0, i % 3 == 0);
        }
        core.pump_all();
    }
    (0..ENDPOINTS)
        .map(|e| {
            let es = core.endpoint_mut(e as usize).stats();
            let fs = core.feed_mut(e as usize).stats();
            ArmStats {
                endpoint: e,
                decisions: es.decisions,
                by_tier: es.by_tier,
                exhausted: es.exhausted,
                transitions: fs.transitions,
                misses: fs.misses,
            }
        })
        .collect()
}

/// Emits one arm's table and per-endpoint canonical points.
fn render_arm(report: &mut Report, part: &str, stats: &[ArmStats], out: &mut String, title: &str) {
    let mut t = Table::new(vec![
        "endpoint",
        "decisions",
        "quantum",
        "classical",
        "independent",
        "exhausted",
        "transitions",
    ]);
    for s in stats {
        t.row(vec![
            s.endpoint.to_string(),
            s.decisions.to_string(),
            s.by_tier[TIER_QUANTUM as usize].to_string(),
            s.by_tier[TIER_CLASSICAL as usize].to_string(),
            s.by_tier[TIER_INDEPENDENT as usize].to_string(),
            s.exhausted.to_string(),
            s.transitions.to_string(),
        ]);
        report.point(Json::obj([
            ("part", Json::str(part)),
            ("endpoint", Json::uint(u64::from(s.endpoint))),
            ("decisions", Json::uint(s.decisions)),
            ("quantum", Json::uint(s.by_tier[TIER_QUANTUM as usize])),
            ("classical", Json::uint(s.by_tier[TIER_CLASSICAL as usize])),
            (
                "independent",
                Json::uint(s.by_tier[TIER_INDEPENDENT as usize]),
            ),
            ("exhausted", Json::uint(s.exhausted)),
            ("transitions", Json::uint(s.transitions)),
            ("misses", Json::uint(s.misses)),
        ]));
    }
    out.push_str(&format!("{title}\n\n{}\n", t.render()));
}

fn sum(stats: &[ArmStats], f: impl Fn(&ArmStats) -> u64) -> u64 {
    stats.iter().map(f).sum()
}

/// Runs E11 with the standard budgets.
pub fn run(quick: bool) -> Report {
    run_with_stop(quick, None)
}

/// Runs E11 as an open-ended soak: the wall-clock arms loop until
/// `stop` is set (the `repro serve --soak` SIGINT flag). All acceptance
/// checks come from the deterministic arms, which complete first, so
/// interrupting the soak still yields a complete artifact.
pub fn run_soak(stop: &AtomicBool) -> Report {
    run_with_stop(false, Some(stop))
}

fn run_with_stop(quick: bool, stop: Option<&AtomicBool>) -> Report {
    let mut report = Report::new("serve", 46);
    let mut out = String::new();
    let stopped = || stop.is_some_and(|s| s.load(Ordering::Acquire));

    // (a) Control: healthy plane. The decision period in
    // `ServeConfig::typical` is half the delivered-pair rate, so the
    // quantum tier must dominate and the governor must stay silent.
    let per_endpoint: u64 = if quick { 4_000 } else { 40_000 };
    let mut core = ServiceCore::new(&arm_config(crate::point_seed(46, 0, 0)));
    core.fill_all();
    let control = soak(&mut core, per_endpoint);
    drop(core);
    render_arm(
        &mut report,
        "control",
        &control,
        &mut out,
        &format!("E11a — healthy-plane control soak ({per_endpoint} decisions/endpoint)"),
    );
    let decisions = sum(&control, |s| s.decisions);
    let quantum = sum(&control, |s| s.by_tier[TIER_QUANTUM as usize]);
    let quantum_frac = quantum as f64 / decisions as f64;
    report.scalar("control.quantum_frac", quantum_frac);
    report.check(
        "control-quantum-dominates",
        quantum_frac > 0.9,
        format!("healthy plane served {quantum_frac:.4} of decisions from the quantum tier"),
    );
    // A healthy plane still misses the odd delivery (~0.5% of rounds),
    // and a miss burst can transiently trip the small-window governor.
    // The defensible claim: trips are rare, and every trip recovers —
    // an even transition count means the governor ended back on the
    // quantum tier it started on.
    report.check(
        "control-governor-recovers",
        control
            .iter()
            .all(|s| s.transitions % 2 == 0 && s.transitions <= 6),
        "governor transitions on the healthy plane are rare and always recover",
    );
    report.check(
        "control-accounting-balances",
        control
            .iter()
            .all(|s| s.by_tier.iter().sum::<u64>() == s.decisions),
        "every decision is attributed to exactly one tier",
    );

    // (b) Faulted: periodic both-link outages. The governor must trip
    // off the quantum tier during each outage and recover after it.
    let faulted_per_endpoint: u64 = if quick { 6_000 } else { 24_000 };
    let mut config = arm_config(crate::point_seed(46, 1, 0));
    let period_ns = config.decision_period.as_nanos() as u64;
    config.distributor.faults = FaultPlan::periodic(
        FaultKind::LinkOutage(LinkSide::Both),
        SimTime::from_micros(2_000),
        Duration::from_micros(40_000),
        Duration::from_micros(8_000),
        SimTime::from_nanos(faulted_per_endpoint.saturating_mul(period_ns)),
    );
    let mut core = ServiceCore::new(&config);
    core.fill_all();
    let faulted = soak(&mut core, faulted_per_endpoint);
    drop(core);
    render_arm(
        &mut report,
        "faulted",
        &faulted,
        &mut out,
        &format!(
            "E11b — fault soak ({faulted_per_endpoint} decisions/endpoint, \
             8 ms both-link outage every 40 ms)"
        ),
    );
    let transitions = sum(&faulted, |s| s.transitions);
    report.scalar("faulted.transitions", transitions as f64);
    report.check(
        "faulted-governor-trips-and-recovers",
        faulted.iter().all(|s| s.transitions >= 2),
        format!("every endpoint saw >= 2 mode transitions ({transitions} total)"),
    );
    report.check(
        "faulted-serves-degraded-tiers",
        faulted.iter().all(|s| {
            s.by_tier[TIER_CLASSICAL as usize] + s.by_tier[TIER_INDEPENDENT as usize] > 0
                && s.by_tier[TIER_QUANTUM as usize] > 0
        }),
        "outage windows degrade, healthy windows stay quantum",
    );
    report.check(
        "faulted-records-misses",
        faulted.iter().all(|s| s.misses > 0),
        "starved quantum rounds are counted as misses",
    );

    // (c) Starved: never fill, never pump. Every decision finds an empty
    // ring and must still answer — split-placed, classical tier — from
    // the endpoint's inline fallback stream.
    let starved_per_endpoint: u64 = if quick { 2_000 } else { 10_000 };
    let mut core = ServiceCore::new(&arm_config(crate::point_seed(46, 2, 0)));
    let mut all_split = true;
    for i in 0..starved_per_endpoint {
        for e in 0..ENDPOINTS as usize {
            let p = core.decide(e, i % 2 == 0, i % 3 == 0);
            all_split &= p.first != p.second;
        }
    }
    let starved: Vec<ArmStats> = (0..ENDPOINTS)
        .map(|e| {
            let es = core.endpoint_mut(e as usize).stats();
            ArmStats {
                endpoint: e,
                decisions: es.decisions,
                by_tier: es.by_tier,
                exhausted: es.exhausted,
                transitions: 0,
                misses: 0,
            }
        })
        .collect();
    drop(core);
    render_arm(
        &mut report,
        "starved",
        &starved,
        &mut out,
        &format!("E11c — starvation soak ({starved_per_endpoint} decisions/endpoint, rings never filled)"),
    );
    report.check(
        "starved-degrades-inline",
        starved
            .iter()
            .all(|s| s.exhausted == s.decisions && s.decisions == starved_per_endpoint),
        "every empty-ring decision answered from the inline fallback",
    );
    report.check(
        "starved-always-splits",
        all_split,
        "inline classical fallback always split-places",
    );

    // (d) Wall-clock arms: machine-dependent, so results go to obs (the
    // artifact's `perf` section) and stderr only — never the canonical
    // payload. Each round is one timed fill-then-drain throughput window
    // plus a burst of per-decision latency samples; under `--soak` the
    // rounds loop until SIGINT.
    let rounds: u64 = if stop.is_some() {
        u64::MAX
    } else if quick {
        24
    } else {
        192
    };
    let latency_burst: u64 = 2_048;
    let mut core = ServiceCore::new(&arm_config(crate::point_seed(46, 3, 0)));
    let capacity = 1024u64;
    let mut hot_decisions = 0u64;
    let mut hot_ns = 0u64;
    let mut sampled = 0u64;
    let started = Instant::now();
    for _ in 0..rounds {
        if stopped() {
            break;
        }
        // Throughput window: rings filled to capacity, then drained dry
        // inside one timer. Only the drain is timed.
        core.fill_all();
        let t0 = Instant::now();
        for i in 0..capacity {
            for e in 0..ENDPOINTS as usize {
                let _ = core.decide(e, i % 2 == 0, i & 4 == 0);
            }
        }
        let window_ns = t0.elapsed().as_nanos() as u64;
        let window_decisions = capacity * u64::from(ENDPOINTS);
        measure::record_hot_window(window_decisions, window_ns);
        hot_decisions += window_decisions;
        hot_ns += window_ns;

        // Latency burst: one Instant pair per decision, rings kept above
        // the low-water mark by pumping *outside* the timed region.
        core.fill_all();
        for i in 0..latency_burst {
            let e = (i % u64::from(ENDPOINTS)) as usize;
            let (x, y) = (i % 2 == 0, i % 3 == 0);
            let t = Instant::now();
            let _ = core.decide(e, x, y);
            measure::record_decision_latency(t.elapsed().as_nanos() as u64);
            if i % 128 == 127 {
                core.pump_all();
            }
        }
        sampled += latency_burst;
    }
    drop(core);
    if hot_ns > 0 {
        eprintln!(
            "serve: {:.2e} decisions/s hot ({} decisions / {:.1} ms busy), \
             {} latency samples, wall {:.1} ms{}",
            hot_decisions as f64 / (hot_ns as f64 / 1e9),
            hot_decisions,
            hot_ns as f64 / 1e6,
            sampled,
            started.elapsed().as_nanos() as f64 / 1e6,
            if stopped() { " (interrupted)" } else { "" },
        );
    }
    out.push_str(&format!(
        "E11d — wall-clock hot-path measurement: see the artifact's `perf` \
         section (decisions_per_sec, p50/p99/p999 ns) and stderr; \
         machine-dependent numbers never enter the canonical payload.\n\
         quantum tier fraction (control): {}\n",
        f4(quantum_frac)
    ));

    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_its_checks() {
        let report = run(true);
        assert!(report.passed(), "{report}");
        let out = format!("{report}");
        assert!(out.contains("E11a"), "{out}");
        assert!(out.contains("E11c"), "{out}");
    }

    #[test]
    fn soak_stops_promptly_when_interrupted_and_still_passes() {
        // A pre-set stop flag: the wall-clock loop must exit on its
        // first check while the deterministic arms still complete and
        // the artifact still passes.
        let stop = AtomicBool::new(true);
        let report = run_soak(&stop);
        assert!(report.passed(), "{report}");
    }
}
