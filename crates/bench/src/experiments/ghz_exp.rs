//! Experiment E9: multiparty pseudo-telepathy under noise — where does
//! the N-party coordination advantage survive?
//!
//! The constructive counterpart to the ECMP negative result (E4): the
//! paper stops at bipartite CHSH coordination, but its §4.1 observation
//! that the multiparty gap *grows* with the player count is exactly what
//! a rack-scale deployment would exploit. Two sweeps:
//!
//! - (a) the n-player Mermin parity game on noisy GHZ states, N ∈ 3..10
//!   × visibility, played through the closed-form `qsim::ghz` kernel
//!   (`games::multiparty::play_mermin_batch`). For each N we locate the
//!   **classical-crossover visibility** — where `(1+v)/2` meets the
//!   classical ceiling `1/2 + 2^{−⌈n/2⌉}` — and pin it to the closed
//!   form `v* = 2^{1−⌈n/2⌉}`. The window of quantum advantage *widens*
//!   with N: more parties tolerate noisier hardware.
//! - (b) the Mermin–Peres Magic Square game on two Werner pairs
//!   (`games::magic`), whose crossover sits much higher, at
//!   `v* = (√39 − 2)/5 ≈ 0.849`.

use crate::report::Report;
use crate::table::{f4, Table};
use games::magic::MagicSquare;
use games::multiparty::{
    mermin_classical_bound, mermin_crossover_visibility, mermin_quantum_win, play_mermin_batch,
};
use obs::json::Json;
use qmath::stats::wilson;
use qsim::ghz::NoisyGhz;

/// Visibility grid for the Mermin sweep: includes every closed-form
/// crossover `2^{1−⌈n/2⌉}` for n ∈ 3..10 (0.5, 0.25, 0.125, 0.0625) as
/// a grid point, with neighbors on both sides for interpolation.
const MERMIN_VIS: [f64; 10] = [
    0.0, 0.0625, 0.125, 0.1875, 0.25, 0.375, 0.5, 0.625, 0.75, 1.0,
];

/// Visibility grid for the Magic Square sweep, bracketing its crossover
/// at `(√39 − 2)/5 ≈ 0.849`.
const MAGIC_VIS: [f64; 8] = [0.0, 0.5, 0.7, 0.8, 0.85, 0.9, 0.95, 1.0];

/// Linear interpolation of the visibility where the win rate first
/// clears `bound` (rates ordered by ascending visibility). `None` when
/// the sweep never clears the bound.
fn crossover_from_sweep(vis: &[f64], rates: &[f64], bound: f64) -> Option<f64> {
    let i = rates.iter().position(|&r| r > bound)?;
    if i == 0 {
        return Some(vis[0]);
    }
    let (v0, v1) = (vis[i - 1], vis[i]);
    let (r0, r1) = (rates[i - 1], rates[i]);
    if r1 - r0 < 1e-12 {
        return Some(v1);
    }
    Some(v0 + (bound - r0) / (r1 - r0) * (v1 - v0))
}

/// Runs the multiparty-advantage experiment with the ambient worker
/// count.
pub fn run(quick: bool) -> Report {
    run_with_threads(runtime::thread_count(), quick)
}

/// Runs the multiparty-advantage experiment with an explicit worker
/// count (the determinism tests sweep this).
pub fn run_with_threads(threads: usize, quick: bool) -> Report {
    let mut report = Report::new("ghz", 9);
    let mut out = String::new();

    // (a) Mermin game: N × visibility, kernel-backed batches.
    let ns: &[usize] = if quick { &[3, 5, 8] } else { &[3, 4, 5, 6, 7, 8, 9, 10] };
    let rounds: u64 = if quick { 4_000 } else { 50_000 };
    let mut crossovers: Vec<(usize, f64, f64)> = Vec::new();
    let mut rate_at_v0: Vec<(usize, f64)> = Vec::new();
    let mut perfect_at_v1 = true;
    let mut t = Table::new(vec![
        "n",
        "classical bound",
        "crossover v* (measured)",
        "crossover v* (theory)",
    ]);
    for (ni, &n) in ns.iter().enumerate() {
        let batches = runtime::par_sweep_threads(
            threads,
            crate::point_seed(9, 0, ni as u64),
            &MERMIN_VIS,
            |_, &v, rng| {
                let kernel = NoisyGhz::new(n, v).expect("grid visibility is valid");
                play_mermin_batch(&kernel, rounds, rng)
            },
        );
        let rates: Vec<f64> = batches.iter().map(|b| b.win_rate()).collect();
        let bound = mermin_classical_bound(n);
        for (&v, b) in MERMIN_VIS.iter().zip(&batches) {
            report.interval(format!("mermin.n{n}.v{v:.4}"), wilson(b.wins, b.rounds));
            report.point(Json::obj([
                ("part", Json::str("mermin")),
                ("n", Json::uint(n as u64)),
                ("visibility", Json::num(v)),
                ("wins", Json::uint(b.wins)),
                ("rounds", Json::uint(b.rounds)),
                ("win_rate", Json::num(b.win_rate())),
                ("theory", Json::num(mermin_quantum_win(v))),
                ("classical_bound", Json::num(bound)),
            ]));
        }
        perfect_at_v1 &= batches[MERMIN_VIS.len() - 1].wins == rounds;
        rate_at_v0.push((n, rates[0]));
        let measured = crossover_from_sweep(&MERMIN_VIS, &rates, bound)
            .expect("v = 1 always clears the classical bound");
        let theory = mermin_crossover_visibility(n);
        crossovers.push((n, measured, theory));
        report.scalar(format!("crossover.n{n}"), measured);
        report.point(Json::obj([
            ("part", Json::str("crossover")),
            ("n", Json::uint(n as u64)),
            ("crossover_measured", Json::num(measured)),
            ("crossover_theory", Json::num(theory)),
            ("classical_bound", Json::num(bound)),
        ]));
        t.row(vec![
            n.to_string(),
            f4(bound),
            f4(measured),
            f4(theory),
        ]);
    }
    out.push_str(&format!(
        "E9a — Mermin crossover visibility per player count \
         ({rounds} rounds/point, closed-form GHZ kernel)\n\n{}\n",
        t.render()
    ));

    // (b) Magic Square: visibility sweep on two Werner pairs.
    let magic_rounds: u64 = if quick { 4_000 } else { 50_000 };
    let magic_batches = runtime::par_sweep_threads(
        threads,
        crate::point_seed(9, 1, 0),
        &MAGIC_VIS,
        |_, &v, rng| {
            MagicSquare::new(v)
                .expect("grid visibility is valid")
                .play_batch(magic_rounds, rng)
        },
    );
    let magic_rates: Vec<f64> = magic_batches.iter().map(|b| b.win_rate()).collect();
    let mut t = Table::new(vec!["visibility", "win rate", "theory", "advantage?"]);
    for (&v, b) in MAGIC_VIS.iter().zip(&magic_batches) {
        let theory = games::magic::quantum_win(v);
        t.row(vec![
            f4(v),
            f4(b.win_rate()),
            f4(theory),
            (if b.win_rate() > 8.0 / 9.0 { "yes" } else { "NO" }).to_string(),
        ]);
        report.interval(format!("magic.v{v:.4}"), wilson(b.wins, b.rounds));
        report.point(Json::obj([
            ("part", Json::str("magic")),
            ("visibility", Json::num(v)),
            ("wins", Json::uint(b.wins)),
            ("rounds", Json::uint(b.rounds)),
            ("win_rate", Json::num(b.win_rate())),
            ("theory", Json::num(theory)),
        ]));
    }
    let magic_measured =
        crossover_from_sweep(&MAGIC_VIS, &magic_rates, 8.0 / 9.0).unwrap_or(f64::NAN);
    let magic_theory = games::magic::crossover_visibility();
    report.scalar("magic.crossover", magic_measured);
    report.point(Json::obj([
        ("part", Json::str("magic_crossover")),
        ("crossover_measured", Json::num(magic_measured)),
        ("crossover_theory", Json::num(magic_theory)),
        ("classical_bound", Json::num(8.0 / 9.0)),
    ]));
    out.push_str(&format!(
        "E9b — Mermin–Peres Magic Square vs Werner visibility \
         ({magic_rounds} rounds/point; classical optimum 8/9, crossover ≈ {:.4})\n\n{}",
        magic_theory,
        t.render()
    ));

    // Acceptance. The kernel at v = 1 is exactly deterministic — every
    // batch must be perfect, not merely close.
    report.check(
        "perfect-at-unit-visibility",
        perfect_at_v1,
        format!("all {} Mermin batches at v = 1 won every round", ns.len()),
    );
    let worst_v0 = rate_at_v0
        .iter()
        .map(|&(n, r)| r - mermin_classical_bound(n))
        .fold(f64::NEG_INFINITY, f64::max);
    report.check(
        "no-advantage-at-zero-visibility",
        worst_v0 < 0.0,
        format!(
            "v = 0 win rates sit below the classical bound (worst margin {worst_v0:+.4})"
        ),
    );
    let worst_cross = crossovers
        .iter()
        .map(|&(_, m, th)| (m - th).abs())
        .fold(0.0, f64::max);
    let cross_tol = if quick { 0.12 } else { 0.05 };
    report.check(
        "crossover-matches-closed-form",
        worst_cross < cross_tol,
        format!("max |measured − 2^(1−⌈n/2⌉)| = {worst_cross:.4} < {cross_tol}"),
    );
    report.check(
        "advantage-window-widens-with-n",
        crossovers.first().map(|c| c.1) > crossovers.last().map(|c| c.1),
        format!(
            "crossover falls from {:.4} (n = {}) to {:.4} (n = {})",
            crossovers.first().map_or(f64::NAN, |c| c.1),
            ns.first().copied().unwrap_or(0),
            crossovers.last().map_or(f64::NAN, |c| c.1),
            ns.last().copied().unwrap_or(0),
        ),
    );
    let worst_magic = MAGIC_VIS
        .iter()
        .zip(&magic_rates)
        .map(|(&v, &r)| (r - games::magic::quantum_win(v)).abs())
        .fold(0.0, f64::max);
    let magic_tol = if quick { 0.04 } else { 0.012 };
    report.check(
        "magic-square-matches-closed-form",
        worst_magic < magic_tol,
        format!("max |rate − (1/2 + (4v + 5v²)/18)| = {worst_magic:.4} < {magic_tol}"),
    );

    report.text = out;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_its_checks() {
        let report = run(true);
        assert!(report.passed(), "{report}");
        let out = format!("{report}");
        assert!(out.contains("crossover"), "{out}");
    }

    #[test]
    fn crossover_interpolation_is_exact_on_linear_rates() {
        // Rates that are exactly (1+v)/2 must interpolate to the exact
        // closed-form crossover for every n.
        let rates: Vec<f64> = MERMIN_VIS.iter().map(|&v| mermin_quantum_win(v)).collect();
        for n in 3..=10usize {
            let bound = mermin_classical_bound(n);
            let c = crossover_from_sweep(&MERMIN_VIS, &rates, bound).unwrap();
            assert!(
                (c - mermin_crossover_visibility(n)).abs() < 1e-12,
                "n = {n}: {c}"
            );
        }
    }

    #[test]
    fn crossover_handles_edges() {
        assert_eq!(crossover_from_sweep(&[0.0, 1.0], &[0.9, 1.0], 0.5), Some(0.0));
        assert_eq!(crossover_from_sweep(&[0.0, 1.0], &[0.1, 0.2], 0.5), None);
    }
}
