//! Bench: load-balancing simulation throughput (DESIGN.md design-choice
//! #4) — cost of one Figure 4 simulation cell vs N, and the relative cost
//! of the strategies (the quantum fast path should be within ~2× of
//! uniform random, keeping full sweeps tractable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loadbalance::server::Discipline;
use loadbalance::sim::{run_simulation, SimConfig};
use loadbalance::strategy::{QuantumMode, Strategy};
use loadbalance::task::BernoulliWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn config(n: usize) -> SimConfig {
    SimConfig {
        n_balancers: n,
        n_servers: n, // load 1.0
        timesteps: 200,
        warmup: 50,
        discipline: Discipline::PaperPairedC,
    }
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("lb_sim_200_steps");
    group.sample_size(20);

    for n in [20usize, 100, 400] {
        group.bench_with_input(BenchmarkId::new("uniform_random", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut w = BernoulliWorkload::paper();
                black_box(run_simulation(config(n), Strategy::UniformRandom, &mut w, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("quantum_fast", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let mut w = BernoulliWorkload::paper();
                black_box(run_simulation(
                    config(n),
                    Strategy::quantum_ideal(),
                    &mut w,
                    &mut rng,
                ))
            })
        });
    }

    // The exact-simulation mode at small N only (it is the slow path).
    group.bench_with_input(BenchmarkId::new("quantum_exact", 20), &20, |b, &n| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut w = BernoulliWorkload::paper();
            black_box(run_simulation(
                config(n),
                Strategy::PairedQuantum {
                    mode: QuantumMode::ExactSimulation,
                    availability: 1.0,
                    visibility: 1.0,
                },
                &mut w,
                &mut rng,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
