//! Ablation bench: sampling one correlated CHSH decision.
//!
//! DESIGN.md design-choice #3: the load-balancing simulations sample
//! correlated decisions from the closed-form CHSH joint distribution
//! (`games::CorrelationBox`) instead of simulating the 2-qubit
//! measurement each round. This bench quantifies the speedup that
//! justifies the fast path (the strategies' statistical equivalence is
//! asserted by `loadbalance::strategy` tests).

use criterion::{criterion_group, criterion_main, Criterion};
use games::chsh::{alice_angle, bob_angle};
use games::CorrelationBox;
use qsim::{Party, SharedPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_chsh_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("chsh_round");

    group.bench_function("exact_statevector", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut pair = SharedPair::ideal();
            let a = pair
                .measure_angle(Party::A, alice_angle(1), &mut rng)
                .expect("fresh pair");
            let bb = pair
                .measure_angle(Party::B, bob_angle(0), &mut rng)
                .expect("fresh pair");
            black_box((a, bb))
        })
    });

    group.bench_function("exact_werner_density", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut pair = SharedPair::werner(0.95).expect("valid visibility");
            let a = pair
                .measure_angle(Party::A, alice_angle(1), &mut rng)
                .expect("fresh pair");
            let bb = pair
                .measure_angle(Party::B, bob_angle(0), &mut rng)
                .expect("fresh pair");
            black_box((a, bb))
        })
    });

    group.bench_function("fast_correlation_box", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let boxx = CorrelationBox::chsh_optimal();
        b.iter(|| black_box(boxx.sample(1, 0, &mut rng)))
    });

    group.finish();
}

criterion_group!(benches, bench_chsh_round);
criterion_main!(benches);
