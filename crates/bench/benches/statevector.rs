//! Ablation bench: statevector gate-application kernels.
//!
//! DESIGN.md design-choice #2: `qsim` applies single-qubit gates with a
//! specialized stride kernel instead of building the full 2ⁿ×2ⁿ unitary.
//! This bench shows the gap (the full-matrix route exists on
//! `DensityMatrix::apply_gate1`, which must embed the gate), and the
//! scaling of the specialized kernel with qubit count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::{gates, DensityMatrix, StateVector};
use std::hint::black_box;

fn bench_gate_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_application");

    for n in [4usize, 8, 12, 16] {
        group.bench_with_input(
            BenchmarkId::new("statevector_stride_kernel", n),
            &n,
            |b, &n| {
                let mut s = StateVector::zero(n);
                b.iter(|| {
                    s.apply_gate1(n / 2, &gates::h()).expect("in range");
                    black_box(s.amplitude(0))
                })
            },
        );
    }

    for n in [4usize, 6, 8] {
        group.bench_with_input(
            BenchmarkId::new("density_full_embedding", n),
            &n,
            |b, &n| {
                let mut rho = DensityMatrix::maximally_mixed(n);
                b.iter(|| {
                    rho.apply_gate1(n / 2, &gates::h()).expect("in range");
                    black_box(rho.trace())
                })
            },
        );
    }

    group.bench_function("bell_pair_construction", |b| {
        b.iter(|| black_box(qsim::bell::phi_plus()))
    });

    group.bench_function("ghz_8_construction", |b| {
        b.iter(|| black_box(qsim::bell::ghz(8)))
    });

    group.finish();
}

criterion_group!(benches, bench_gate_application);
criterion_main!(benches);
