//! Ablation bench for the served decision hot path (DESIGN.md §5).
//!
//! Two independent knobs, three arms (`make bench-serve`):
//!
//! - **`predrawn_spsc`** — the shipped hand-off: slots pre-drawn into a
//!   lock-free SPSC ring, decide = `pop` + outcome-table lookup. Each
//!   consumed slot is recycled back through the producer handle, so the
//!   measured loop pays exactly one hand-off in and one out per
//!   decision — the steady-state cost with the distributor keeping the
//!   ring stocked from its own thread.
//! - **`predrawn_mutex`** — the identical recycle loop through a
//!   `Mutex<VecDeque>`: isolates the ring-vs-lock knob. Every decision
//!   pays an uncontended lock; under real cross-thread traffic the gap
//!   widens further.
//! - **`draw_on_demand`** — no buffering: every decision runs the full
//!   slot production (distributor advance, governor observation, CHSH
//!   CDF walks) before answering, via a capacity-1 ring pumped per
//!   decision. Isolates the pre-drawn-vs-on-demand knob and is the
//!   baseline the ≥3× acceptance ratio is quoted against (the shipped
//!   path must also hold ≥3× over the mutex hand-off).

use criterion::{criterion_group, criterion_main, Criterion};
use serve::decision::{self, DecisionSlot};
use serve::ring;
use serve::{ServeConfig, ServiceCore};
use std::collections::VecDeque;
use std::hint::black_box;
use std::sync::Mutex;

const N_SERVERS: u32 = 64;
const PREDRAWN: u64 = 4096;

/// The slot stream the shipped service would buffer: one pre-drawn
/// `DecisionSlot` per sequence number, pure in `(endpoint_seed, seq)`.
fn predrawn_cycle(master_seed: u64) -> Vec<DecisionSlot> {
    let endpoint_seed = runtime::stream_seed(master_seed, 0);
    (0..PREDRAWN)
        .map(|seq| {
            let mut rng = decision::slot_rng(endpoint_seed, seq);
            decision::draw_classical_shared(seq, N_SERVERS, &mut rng)
        })
        .collect()
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_decide");

    group.bench_function("predrawn_spsc", |b| {
        let (mut tx, mut rx) = ring::spsc::<DecisionSlot>(PREDRAWN as usize);
        for slot in predrawn_cycle(0xB0) {
            if !tx.push(slot) {
                break;
            }
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let slot = rx.pop().expect("recycled ring never runs dry");
            let placement = black_box(slot.place(i & 1 == 0, i & 2 == 0));
            tx.push(slot);
            placement
        })
    });

    group.bench_function("predrawn_mutex", |b| {
        let queue: Mutex<VecDeque<DecisionSlot>> =
            Mutex::new(predrawn_cycle(0xB0).into_iter().collect());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            // One critical section per decision (the charitable version:
            // take and recycle under a single lock acquisition).
            let slot = {
                let mut q = queue.lock().expect("bench queue");
                let slot = q.pop_front().expect("recycled queue never runs dry");
                q.push_back(slot);
                slot
            };
            black_box(slot.place(i & 1 == 0, i & 2 == 0))
        })
    });

    group.bench_function("draw_on_demand", |b| {
        // Ring capacity 1 with an immediate pump per decision: the full
        // production-side draw (distributor advance, governor, CHSH CDF
        // walks) lands on the decision path.
        let config = ServeConfig {
            n_servers: N_SERVERS,
            n_endpoints: 1,
            ring_capacity: 1,
            low_water: 0,
            refill_batch: 1,
            ..ServeConfig::typical(0xB1)
        };
        let mut core = ServiceCore::new(&config);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            core.pump_all();
            black_box(core.decide(0, i & 1 == 0, i & 2 == 0))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_decide);
criterion_main!(benches);
