//! Ablation bench: one n-party Mermin round, statevector vs closed-form
//! GHZ kernel vs batched kernel play.
//!
//! DESIGN.md §5: `games::multiparty` historically simulated every round
//! through a full `SharedState::ghz(n)` statevector — O(2ⁿ) amplitudes
//! and n basis measurements per round. The `qsim::ghz` kernel samples
//! the exact joint distribution with one f64 draw plus one word of bulk
//! bits (O(n)), and the batched path additionally hoists the per-input
//! correlation out of the loop. The acceptance bar is ≥5× per round at
//! n = 3, growing with n.

use criterion::{criterion_group, criterion_main, Criterion};
use games::multiparty::{mermin_input_masks, play_mermin_batch, play_mermin_quantum};
use qsim::ghz::NoisyGhz;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_mermin_round(c: &mut Criterion) {
    for n in [3usize, 6, 10] {
        let mut group = c.benchmark_group(format!("mermin_round_n{n}"));
        let masks = mermin_input_masks(n);
        let inputs: Vec<Vec<u8>> = masks
            .iter()
            .map(|m| (0..n).map(|j| ((m >> j) & 1) as u8).collect())
            .collect();

        group.bench_function("exact_statevector", |b| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % inputs.len();
                black_box(play_mermin_quantum(&inputs[i], &mut rng))
            })
        });

        group.bench_function("kernel_single", |b| {
            let mut rng = StdRng::seed_from_u64(2);
            let kernel = NoisyGhz::new(n, 0.95).expect("valid visibility");
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % masks.len();
                black_box(kernel.sample_xy(masks[i], &mut rng))
            })
        });

        group.bench_function("kernel_batched_1024", |b| {
            let mut rng = StdRng::seed_from_u64(3);
            let kernel = NoisyGhz::new(n, 0.95).expect("valid visibility");
            b.iter(|| black_box(play_mermin_batch(&kernel, 1024, &mut rng)))
        });

        group.finish();
    }
}

criterion_group!(benches, bench_mermin_round);
criterion_main!(benches);
