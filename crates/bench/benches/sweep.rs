//! Bench: sweep executor and sampling-kernel ablations.
//!
//! 1. `sweep_executor` — a Figure-4-quick-sized grid (6 strategies × 10
//!    loads, N = 40, 600 steps) run with the old spawn-one-thread-per-
//!    point pattern vs the pooled work-stealing executor. The pool must
//!    win by ≥ 1.5× on ≥ 4 cores: per-point spawns oversubscribe the
//!    machine with 60 threads of wildly uneven lifetime, while the pool
//!    keeps exactly `thread_count()` workers busy via stealing.
//! 2. `correlation_sample` — the hot `CorrelationBox::sample` kernel
//!    (cached CDF, one uniform draw, branchless inversion) vs the seed
//!    formulation that recomputed the agreement probability and drew
//!    twice per call, with a branch. Timed in batches of 1024 calls so
//!    harness overhead doesn't mask the ~ns-scale kernels. The cached
//!    kernel must win by ≥ 2×.
//! 3. `obs_overhead` — the same pooled fig4-quick grid with metric
//!    collection off (the default) vs on. The obs ablation contract
//!    (DESIGN.md §5) is < 2% overhead: recording is a handful of relaxed
//!    atomic ops per simulated round against ~µs of simulation work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use games::correlation::CorrelationBox;
use loadbalance::server::Discipline;
use loadbalance::sim::{run_simulation, SimConfig};
use loadbalance::strategy::Strategy;
use loadbalance::task::BernoulliWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Mutex;

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::UniformRandom,
        Strategy::RoundRobin,
        Strategy::PowerOfTwoChoices,
        Strategy::PairedAlwaysSplit,
        Strategy::PairedMatchTypes,
        Strategy::quantum_ideal(),
    ]
}

/// One Figure 4 cell at the quick budget (mirrors `fig4::sim_point`).
fn cell(strategy: Strategy, load: f64, seed: u64) -> f64 {
    let config = SimConfig {
        n_balancers: 40,
        n_servers: (40.0 / load).round() as usize,
        timesteps: 600,
        warmup: 150,
        discipline: Discipline::PaperPairedC,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut workload = BernoulliWorkload::paper();
    run_simulation(config, strategy, &mut workload, &mut rng).avg_queue_len
}

fn bench_sweep_executor(c: &mut Criterion) {
    let strategies = strategies();
    let loads: Vec<f64> = (6..=15).map(|i| i as f64 / 10.0).collect();
    let grid = runtime::grid2(strategies.len(), loads.len());

    let mut group = c.benchmark_group("sweep_executor_fig4_quick");
    group.sample_size(5);

    // The pre-runtime pattern: one OS thread per grid point, results
    // funneled through a mutex.
    group.bench_function(BenchmarkId::new("spawn_per_point", grid.len()), |b| {
        b.iter(|| {
            let lock = Mutex::new(Vec::with_capacity(grid.len()));
            std::thread::scope(|scope| {
                for &(si, li) in &grid {
                    let lock = &lock;
                    let strategy = strategies[si];
                    let load = loads[li];
                    scope.spawn(move || {
                        let q = cell(strategy, load, runtime::point_seed(40, si as u64, li as u64));
                        lock.lock().expect("sweep lock").push((si, li, q));
                    });
                }
            });
            black_box(lock.into_inner().expect("sweep lock"))
        })
    });

    group.bench_function(BenchmarkId::new("pooled_executor", grid.len()), |b| {
        b.iter(|| {
            black_box(runtime::par_map(&grid, |_, &(si, li)| {
                cell(
                    strategies[si],
                    loads[li],
                    runtime::point_seed(40, si as u64, li as u64),
                )
            }))
        })
    });

    group.finish();
}

/// The seed-version sampling kernel, verbatim: recompute the agreement
/// probability from the correlation entry and invert it with two uniform
/// draws (one for `a`, one branchy draw for `b | a`).
fn sample_two_draw<R: Rng>(boxx: &CorrelationBox, x: usize, y: usize, rng: &mut R) -> (bool, bool) {
    let c = boxx.correlation(x, y);
    // a is uniform; b agrees with a w.p. (1 + c)/2.
    let a: bool = rng.gen();
    let agree = rng.gen::<f64>() < (1.0 + c) / 2.0;
    let b = if agree { a } else { !a };
    (a, b)
}

/// Samples per bench iteration: a single call is ~2 ns, far below the
/// harness's per-iteration overhead, so time a batch and compare ratios.
const BATCH: usize = 1024;

fn bench_correlation_sample(c: &mut Criterion) {
    let boxx = CorrelationBox::chsh_optimal();
    let mut group = c.benchmark_group("correlation_sample");

    group.bench_function(BenchmarkId::new("cached_cdf", BATCH), |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..BATCH {
                let (a, bb) = boxx.sample(i & 1, (i >> 1) & 1, &mut rng);
                acc += (a as u32) ^ (bb as u32);
            }
            black_box(acc)
        })
    });

    group.bench_function(BenchmarkId::new("two_draw_branch", BATCH), |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..BATCH {
                let (a, bb) = sample_two_draw(&boxx, i & 1, (i >> 1) & 1, &mut rng);
                acc += (a as u32) ^ (bb as u32);
            }
            black_box(acc)
        })
    });

    group.finish();
}

fn bench_obs_overhead(c: &mut Criterion) {
    let strategies = strategies();
    let loads: Vec<f64> = (6..=15).map(|i| i as f64 / 10.0).collect();
    let grid = runtime::grid2(strategies.len(), loads.len());
    let sweep = |grid: &[(usize, usize)]| {
        runtime::par_map(grid, |_, &(si, li)| {
            cell(
                strategies[si],
                loads[li],
                runtime::point_seed(40, si as u64, li as u64),
            )
        })
    };

    let mut group = c.benchmark_group("obs_overhead_fig4_quick");
    group.sample_size(5);

    group.bench_function(BenchmarkId::new("obs_off", grid.len()), |b| {
        obs::set_enabled(false);
        b.iter(|| black_box(sweep(&grid)))
    });

    group.bench_function(BenchmarkId::new("obs_on", grid.len()), |b| {
        obs::reset();
        obs::set_enabled(true);
        b.iter(|| black_box(sweep(&grid)));
        obs::set_enabled(false);
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_sweep_executor,
    bench_correlation_sample,
    bench_obs_overhead
);
criterion_main!(benches);
