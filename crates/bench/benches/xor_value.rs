//! Ablation bench: XOR-game quantum-value solvers.
//!
//! DESIGN.md design-choice #1: alternating exact half-steps vs projected
//! gradient over the elliptope. Accuracy agreement is tested in
//! `games::xor`; this bench measures the speed gap on CHSH and on random
//! 5-input games (the Figure 3 workload).

use criterion::{criterion_group, criterion_main, Criterion};
use games::{AffinityGraph, XorGame};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn random_5v_game(seed: u64) -> XorGame {
    let mut rng = StdRng::seed_from_u64(seed);
    AffinityGraph::random(5, 0.5, &mut rng).to_xor_game(true)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_quantum_value");

    group.bench_function("alternating_chsh", |b| {
        let game = XorGame::chsh();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(game.quantum_solution(8, &mut rng).value))
    });

    group.bench_function("pgd_chsh", |b| {
        let game = XorGame::chsh();
        b.iter(|| black_box(game.quantum_bias_pgd(300)))
    });

    group.bench_function("alternating_5v_graph", |b| {
        let game = random_5v_game(7);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(game.quantum_solution(8, &mut rng).value))
    });

    group.bench_function("pgd_5v_graph", |b| {
        let game = random_5v_game(7);
        b.iter(|| black_box(game.quantum_bias_pgd(300)))
    });

    group.bench_function("classical_exact_5v", |b| {
        let game = random_5v_game(7);
        b.iter(|| black_box(game.classical_value()))
    });

    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
