//! Ablation bench: XOR-game value pipeline.
//!
//! DESIGN.md design-choice #1 (alternating half-steps vs projected
//! gradient) plus the §5 solver-pipeline ablation: naive vs Gray-code
//! classical enumeration, cold vs warm-started vs convergence-gated
//! quantum solves, and the end-to-end fig3-quick workload through the
//! seed solver stack vs the cached fast stack — the measurement behind
//! the "≥ 3× end-to-end" acceptance criterion. Accuracy agreement is
//! tested in `games::xor`; this file measures only speed.

use criterion::{criterion_group, criterion_main, Criterion};
use games::cache::ValueCache;
use games::graph::sample_games;
use games::{AffinityGraph, SolverOpts, XorGame};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn random_5v_game(seed: u64) -> XorGame {
    let mut rng = StdRng::seed_from_u64(seed);
    AffinityGraph::random(5, 0.5, &mut rng).to_xor_game(true)
}

/// The fig3 quick workload: 11 sweep points × 40 graphs on 5 vertices,
/// drawn exactly like `experiments::fig3::run(quick = true)` does.
fn fig3_quick_games() -> Vec<XorGame> {
    let mut games = Vec::with_capacity(11 * 40);
    for i in 0..11u64 {
        let p = i as f64 / 10.0;
        let mut rng = StdRng::seed_from_u64(runtime::stream_seed(10, i));
        games.extend(sample_games(5, p, 40, &mut rng));
    }
    games
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_quantum_value");

    group.bench_function("alternating_chsh", |b| {
        let game = XorGame::chsh();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(game.quantum_solution(8, &mut rng).value))
    });

    group.bench_function("pgd_chsh", |b| {
        let game = XorGame::chsh();
        b.iter(|| black_box(game.quantum_bias_pgd(300)))
    });

    group.bench_function("alternating_5v_graph", |b| {
        let game = random_5v_game(7);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(game.quantum_solution(8, &mut rng).value))
    });

    group.bench_function("pgd_5v_graph", |b| {
        let game = random_5v_game(7);
        b.iter(|| black_box(game.quantum_bias_pgd(300)))
    });

    group.finish();
}

/// Classical enumeration: naive full-rescan oracle vs Gray-code walk,
/// on the 5-vertex fig3 shape and on a larger 10-input game where the
/// asymptotic gap (O(n_a·n_b) vs O(n_b) per pattern) shows clearly.
fn bench_classical(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_classical_bias");

    group.bench_function("naive_5v", |b| {
        let game = random_5v_game(7);
        b.iter(|| black_box(game.classical_bias_naive().unwrap()))
    });

    group.bench_function("gray_5v", |b| {
        let game = random_5v_game(7);
        b.iter(|| black_box(game.classical_bias().unwrap()))
    });

    let big = {
        let mut rng = StdRng::seed_from_u64(9);
        AffinityGraph::random(10, 0.5, &mut rng).to_xor_game(true)
    };
    group.bench_function("naive_10v", |b| {
        b.iter(|| black_box(big.classical_bias_naive().unwrap()))
    });
    group.bench_function("gray_10v", |b| {
        b.iter(|| black_box(big.classical_bias().unwrap()))
    });

    group.finish();
}

/// Solver-option ablation on a single 5-vertex game: the seed-era fixed
/// 500-iteration cold-start configuration vs the convergence exit vs the
/// spectral warm start.
fn bench_solver_opts(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_solver_opts");
    let game = random_5v_game(7);

    group.bench_function("seed_fixed500_cold", |b| {
        let opts = SolverOpts::seed_solver();
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(game.quantum_solution_with(&opts, &mut rng).value))
    });

    group.bench_function("converge_cold", |b| {
        let opts = SolverOpts {
            warm_start: false,
            ..SolverOpts::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(game.quantum_solution_with(&opts, &mut rng).value))
    });

    group.bench_function("converge_warm", |b| {
        let opts = SolverOpts::default();
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(game.quantum_solution_with(&opts, &mut rng).value))
    });

    group.bench_function("converge_warm_single_start", |b| {
        let opts = SolverOpts {
            restarts: 1,
            ..SolverOpts::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(game.quantum_solution_with(&opts, &mut rng).value))
    });

    group.finish();
}

/// End-to-end fig3 quick workload (440 games, 1 worker): the seed stack
/// (naive classical + fixed-500 cold solver, no cache) vs the fast stack
/// (Gray + warm start + convergence exit, fresh cache per pass) — the
/// DESIGN.md §5 "≥ 3×" number.
fn bench_fig3_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_quick_stack");
    group.sample_size(10);
    let games = fig3_quick_games();
    const TOL: f64 = 1e-4;

    group.bench_function("seed_stack_uncached", |b| {
        let opts = SolverOpts::seed_solver();
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let mut advantaged = 0usize;
            for game in &games {
                let cl = game.classical_bias_naive().unwrap();
                let q = game.quantum_solution_with(&opts, &mut rng).bias;
                advantaged += usize::from((1.0 + q) / 2.0 > (1.0 + cl) / 2.0 + TOL);
            }
            black_box(advantaged)
        })
    });

    group.bench_function("fast_stack_cached", |b| {
        let opts = SolverOpts::default();
        b.iter(|| {
            // A fresh private cache per pass: the measured win includes
            // canonicalization cost and first-solve misses, exactly like
            // one cold fig3 run.
            let cache = ValueCache::new();
            let mut advantaged = 0usize;
            for game in &games {
                let v = cache.solve(game, &opts).unwrap();
                advantaged += usize::from(v.has_advantage(TOL));
            }
            black_box(advantaged)
        })
    });

    group.bench_function("fast_stack_uncached", |b| {
        let opts = SolverOpts::default();
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let mut advantaged = 0usize;
            for game in &games {
                let cl = game.classical_bias().unwrap();
                let q = game.quantum_solution_with(&opts, &mut rng).bias;
                advantaged += usize::from((1.0 + q) / 2.0 > (1.0 + cl) / 2.0 + TOL);
            }
            black_box(advantaged)
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_solvers,
    bench_classical,
    bench_solver_opts,
    bench_fig3_stack
);
criterion_main!(benches);
