//! Ablation bench for the batched entanglement data plane (DESIGN.md §5).
//!
//! Three independent knobs, each measured against its predecessor:
//!
//! - **kernel vs oracle** — closed-form `WernerPair::sample` (one RNG
//!   draw against a 4-entry CDF) vs the density-matrix path
//!   (`take_pair` → Kraus decay → rotate-measure-rotate per half).
//! - **batched vs per-emission** — survivor-process sampling (one
//!   exponential gap at `p·λ` + one geometric loss count per survivor)
//!   vs one gap plus loss draws per emitted pair.
//! - **wheel vs heap** — the bucketed calendar queue against the
//!   `BinaryHeap` reference, on the distributor's own arrival pattern.
//!
//! Run with `make bench-plane`.

use criterion::{criterion_group, criterion_main, Criterion};
use games::chsh::{alice_angle, bob_angle};
use qnet::{
    ConsumePolicy, DistributorConfig, EmissionMode, EntanglementDistributor, EprSource,
    EventQueue, FaultPlan, FiberLink, HeapQueue, SimTime,
};
use qsim::Party;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn plane_config(emission: EmissionMode, link_a_km: f64) -> DistributorConfig {
    DistributorConfig {
        source: EprSource::new(1e6, 0.95),
        link_a: FiberLink::new(link_a_km),
        link_b: FiberLink::new(1.0),
        qnic_capacity: 32,
        memory_lifetime: Duration::from_micros(100),
        max_age: Duration::from_micros(160),
        consume_policy: ConsumePolicy::FreshestFirst,
        faults: FaultPlan::none(),
        emission,
    }
}

/// One consumption round: advance 10 µs of plane time and take a pair.
/// `kernel` selects the closed-form path; otherwise the exact oracle.
struct PlaneDriver {
    dist: EntanglementDistributor,
    now: SimTime,
    rng: StdRng,
}

impl PlaneDriver {
    fn new(emission: EmissionMode, link_a_km: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = EntanglementDistributor::new(plane_config(emission, link_a_km), &mut rng);
        PlaneDriver {
            dist,
            now: SimTime::ZERO,
            rng,
        }
    }

    fn step_kernel(&mut self) -> (u8, u8) {
        self.now += Duration::from_micros(10);
        match self.dist.take_werner(self.now) {
            Some(pair) => pair.sample(alice_angle(1), bob_angle(0), &mut self.rng),
            None => (0, 0),
        }
    }

    fn step_oracle(&mut self) -> (u8, u8) {
        self.now += Duration::from_micros(10);
        match self.dist.take_pair(self.now) {
            Some(mut pair) => {
                let a = pair
                    .measure_angle(Party::A, alice_angle(1), &mut self.rng)
                    .expect("fresh pair");
                let b = pair
                    .measure_angle(Party::B, bob_angle(0), &mut self.rng)
                    .expect("fresh pair");
                (a, b)
            }
            None => (0, 0),
        }
    }
}

fn bench_measurement_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("plane_measurement");

    group.bench_function("werner_kernel", |b| {
        let mut d = PlaneDriver::new(EmissionMode::Batched, 10.0, 1);
        b.iter(|| black_box(d.step_kernel()))
    });

    group.bench_function("exact_oracle", |b| {
        let mut d = PlaneDriver::new(EmissionMode::Batched, 10.0, 2);
        b.iter(|| black_box(d.step_oracle()))
    });

    group.finish();
}

fn bench_emission_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("plane_emission");
    // 50 km far link ⇒ ~10% pair survival: the survivor process runs
    // ~10× fewer draws than per-emission sampling.
    const LOSSY_KM: f64 = 50.0;

    group.bench_function("batched", |b| {
        let mut d = PlaneDriver::new(EmissionMode::Batched, LOSSY_KM, 3);
        b.iter(|| black_box(d.step_kernel()))
    });

    group.bench_function("per_emission", |b| {
        let mut d = PlaneDriver::new(EmissionMode::PerEmission, LOSSY_KM, 4);
        b.iter(|| black_box(d.step_kernel()))
    });

    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("plane_event_queue");
    // The distributor's arrival pattern: ~0.63 events per µs, each
    // scheduled ~50 µs ahead (one propagation delay), popped in order —
    // so ~32 events are in flight at any instant.
    const IN_FLIGHT: usize = 32;

    group.bench_function("calendar_wheel", |b| {
        let mut q = EventQueue::with_profile(1e6, Duration::from_micros(60));
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = 0u64;
        for i in 0..IN_FLIGHT {
            t += rng.gen_range(800u64..2400);
            q.schedule(SimTime::from_nanos(t + 50_000), i as u64);
        }
        b.iter(|| {
            let popped = q.pop().expect("queue primed");
            t += rng.gen_range(800u64..2400);
            q.schedule(SimTime::from_nanos(t + 50_000), popped.1);
            black_box(popped)
        })
    });

    group.bench_function("binary_heap", |b| {
        let mut q = HeapQueue::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = 0u64;
        for i in 0..IN_FLIGHT {
            t += rng.gen_range(800u64..2400);
            q.schedule(SimTime::from_nanos(t + 50_000), i as u64);
        }
        b.iter(|| {
            let popped = q.pop().expect("queue primed");
            t += rng.gen_range(800u64..2400);
            q.schedule(SimTime::from_nanos(t + 50_000), popped.1);
            black_box(popped)
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_measurement_path,
    bench_emission_path,
    bench_event_queue
);
criterion_main!(benches);
