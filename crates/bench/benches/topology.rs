//! Ablation bench: one end-to-end chain evaluation, closed form vs
//! hop-by-hop density-matrix oracle, plus a routed contention epoch.
//!
//! DESIGN.md §5: `qnet::topology` reduces an h-hop repeater chain to the
//! closed forms `v = ∏ v_hop · ideality^(h−1)` and
//! `p = ∏ survival · success^(h−1)` — O(h) multiplies — where the
//! oracle literally builds every elementary Werner pair and fuses them
//! with `entanglement_swap` (O(h) 4×4/16×16 matrix algebra). The
//! acceptance bar is ≥5× per chain at h = 4, growing with depth. The
//! `route_epoch` group tracks the full routing + scheduling + sampling
//! path the E10 star sweep sits on.

use criterion::{criterion_group, criterion_main, Criterion};
use qnet::{route_epoch, star, ChainSpec, PairDemand, Policy, SwapModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_chain_visibility(c: &mut Criterion) {
    let swap = SwapModel::new(0.9, 0.97).expect("valid model");
    for hops in [4usize, 8] {
        let mut group = c.benchmark_group(format!("chain_visibility_h{hops}"));
        let spec = ChainSpec::uniform(hops, 0.98, 0.9, swap).expect("valid chain");

        group.bench_function("closed_form", |b| {
            b.iter(|| black_box(black_box(&spec).end_to_end_visibility()))
        });

        group.bench_function("density_matrix_oracle", |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(spec.oracle_visibility(&mut rng).expect("valid spec")))
        });

        group.finish();
    }
}

fn bench_route_epoch(c: &mut Criterion) {
    let swap = SwapModel::new(0.9, 0.97).expect("valid model");
    let mut group = c.benchmark_group("route_epoch_star8");
    let (g, pairs) = star(8, 5.0, 0.98, swap, 4_000).expect("valid star");
    let demands: Vec<PairDemand> = pairs
        .iter()
        .map(|&(from, to)| PairDemand {
            from,
            to,
            demand: 4_000,
        })
        .collect();
    group.bench_function("round_robin", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            black_box(route_epoch(
                &g,
                &demands,
                &[],
                Policy::RoundRobin,
                epoch,
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_chain_visibility, bench_route_epoch);
criterion_main!(benches);
