//! Trace-overhead bench (DESIGN.md §5): the event timeline's contract is
//! "one relaxed bool load when off", so instrumentation can stay compiled
//! into the hot paths of the data plane year-round.
//!
//! Three measurements:
//!
//! - **gate off vs pure work** — `trace::instant_sim` with the recorder
//!   disabled against the same loop without the call. Any visible gap is
//!   gate overhead leaking into production runs.
//! - **gate on** — the full push path (thread-local ring lookup, slot
//!   write, head bump), the budget for `--trace` runs.
//! - **plane end-to-end** — the batched-plane consumption step traced vs
//!   untraced; DESIGN.md budgets <2% end-to-end overhead with tracing on.
//!
//! Run with `make bench-trace`.

use criterion::{criterion_group, criterion_main, Criterion};
use qnet::{
    ConsumePolicy, DistributorConfig, EmissionMode, EntanglementDistributor, EprSource, FaultPlan,
    FiberLink, SimTime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn plane_driver(seed: u64) -> (EntanglementDistributor, SimTime) {
    let cfg = DistributorConfig {
        source: EprSource::new(1e6, 0.95),
        link_a: FiberLink::new(10.0),
        link_b: FiberLink::new(1.0),
        qnic_capacity: 32,
        memory_lifetime: Duration::from_micros(100),
        max_age: Duration::from_micros(160),
        consume_policy: ConsumePolicy::FreshestFirst,
        faults: FaultPlan::none(),
        emission: EmissionMode::Batched,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    (EntanglementDistributor::new(cfg, &mut rng), SimTime::ZERO)
}

fn bench_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gate");
    let track = trace::Track::Source(0);

    trace::set_enabled(false);
    group.bench_function("baseline_no_call", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            black_box(t)
        })
    });
    group.bench_function("disabled_instant", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            trace::instant_sim(track, "bench.tick", t);
            black_box(t)
        })
    });
    group.bench_function("disabled_pair", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            trace::pair(track, trace::PairStage::Emitted, t, t);
            black_box(t)
        })
    });

    trace::reset();
    trace::set_enabled(true);
    group.bench_function("enabled_instant", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            trace::instant_sim(track, "bench.tick", t);
            black_box(t)
        })
    });
    trace::set_enabled(false);
    trace::reset();

    group.finish();
}

fn bench_plane_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_plane");
    let step = Duration::from_micros(10);

    trace::set_enabled(false);
    group.bench_function("untraced_step", |b| {
        let (mut dist, mut now) = plane_driver(1);
        b.iter(|| {
            now += step;
            black_box(dist.take_werner(now))
        })
    });

    trace::reset();
    trace::set_enabled(true);
    group.bench_function("traced_step", |b| {
        let (mut dist, mut now) = plane_driver(1);
        b.iter(|| {
            now += step;
            black_box(dist.take_werner(now))
        })
    });
    trace::set_enabled(false);
    trace::reset();

    group.finish();
}

criterion_group!(benches, bench_gate, bench_plane_overhead);
criterion_main!(benches);
