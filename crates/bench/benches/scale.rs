//! Bench: the sharded SoA engine ablation (DESIGN.md §5).
//!
//! Three arms at 10⁵ servers, load 1.2, quantum strategy:
//!
//! - `aos`: the frozen pre-shard array-of-structs loop
//!   (`aos::run_simulation_aos`) — the seed implementation's shape.
//! - `soa_single`: the sharded engine pinned to one shard, one worker —
//!   isolates the data-layout win (SoA lanes, closed-form kernels,
//!   per-pair streams) from parallelism.
//! - `soa_sharded`: the sharded engine at its default shard count,
//!   one worker (this container is single-core; multi-core numbers are
//!   reported in DESIGN.md §5) — adds the epoch/mailbox machinery.
//!
//! The PR acceptance line is `soa_single ≥ 3× aos` in tasks/second at
//! 10⁵ servers on one core. A fourth pair of arms measures the obs
//! overhead (satellite: hoisted per-run flushes must cost < 2%).
//!
//! Run with `make bench-scale`. The smaller 10⁴ AoS point keeps the
//! default criterion budget tolerable; 10⁵ AoS is measured with a
//! reduced sample count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loadbalance::aos::run_simulation_aos;
use loadbalance::server::Discipline;
use loadbalance::shard::{default_shards, run_scaled, ScaleConfig, ScaleStrategy};
use loadbalance::sim::SimConfig;
use loadbalance::strategy::Strategy;
use loadbalance::task::{ArrivalModel, BernoulliWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const LOAD: f64 = 1.2;
const STEPS: u64 = 100;

fn sim_config(n_servers: usize) -> SimConfig {
    SimConfig {
        n_balancers: (n_servers as f64 * LOAD).round() as usize,
        n_servers,
        timesteps: STEPS,
        warmup: STEPS / 4,
        discipline: Discipline::PaperPairedC,
    }
}

fn scale_config(n_servers: usize, shards: usize) -> ScaleConfig {
    let mut cfg = ScaleConfig::new(sim_config(n_servers), ArrivalModel::paper());
    cfg.shards = shards;
    cfg.threads = 1;
    cfg
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("lb_scale_100_steps");
    group.sample_size(10);

    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("aos", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut w = BernoulliWorkload::paper();
                black_box(
                    run_simulation_aos(sim_config(n), Strategy::quantum_ideal(), &mut w, &mut rng)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("soa_single", n), &n, |b, &n| {
            let cfg = scale_config(n, 1);
            b.iter(|| black_box(run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 1).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("soa_sharded", n), &n, |b, &n| {
            let cfg = scale_config(n, default_shards(n).max(4));
            b.iter(|| black_box(run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 1).unwrap()))
        });
    }

    // Obs overhead: the sharded engine with the global obs registry
    // enabled vs disabled. Flushes are per-run, so the gap must be noise
    // (< 2% is the satellite acceptance line; asserted in CI via the
    // smoke arm, measured precisely here).
    let cfg = scale_config(100_000, default_shards(100_000));
    group.bench_function("soa_obs_on", |b| {
        obs::set_enabled(true);
        b.iter(|| black_box(run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 2).unwrap()));
    });
    group.bench_function("soa_obs_off", |b| {
        obs::set_enabled(false);
        b.iter(|| black_box(run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 2).unwrap()));
        obs::set_enabled(true);
    });

    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
