//! Property tests pinning the obs histogram against the exact
//! nearest-rank percentile routine used by the simulator
//! (`loadbalance::metrics::percentile`), plus the shard-merge exactness
//! contract. These live in qnlg-bench because obs (deliberately) does
//! not depend on loadbalance.

use loadbalance::metrics::percentile;
use obs::{bucket_bounds, bucket_index, HistSnapshot, HIST_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any sample multiset and any quantile, the histogram's
    /// `percentile_bounds` must bracket the exact nearest-rank
    /// percentile of the raw samples.
    #[test]
    fn bounds_bracket_exact_nearest_rank(
        samples in proptest::collection::vec(0u64..1_000_000, 1..400),
        q_mil in 0u64..1_000_001)
    {
        let q = q_mil as f64 / 1_000_000.0;
        let mut h = HistSnapshot::empty();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = percentile(&sorted, q) as u64;
        let (lo, hi) = h.percentile_bounds(q).unwrap();
        prop_assert!(
            lo <= exact && exact <= hi,
            "q={}: exact {} outside [{}, {}]", q, exact, lo, hi
        );
        // The point estimate is the bracket's upper edge by contract.
        prop_assert_eq!(h.percentile(q), Some(hi));
    }

    /// The bracket is never wider than one bucket (a factor-of-two band)
    /// clipped to the observed extrema.
    #[test]
    fn bounds_stay_within_one_bucket(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200),
        q_mil in 0u64..1_000_001)
    {
        let q = q_mil as f64 / 1_000_000.0;
        let mut h = HistSnapshot::empty();
        for &v in &samples {
            h.record(v);
        }
        let (lo, hi) = h.percentile_bounds(q).unwrap();
        prop_assert!(lo <= hi);
        let b = bucket_index(hi);
        let (blo, bhi) = bucket_bounds(b);
        prop_assert!(blo <= lo && hi <= bhi, "bracket spans buckets");
    }

    /// Recording a stream split across shards and merging must equal
    /// recording everything into one snapshot — merge loses nothing.
    #[test]
    fn merged_shards_equal_single_recording(
        samples in proptest::collection::vec(0u64..u64::MAX, 0..300),
        n_shards in 1usize..6)
    {
        let mut shards = vec![HistSnapshot::empty(); n_shards];
        let mut single = HistSnapshot::empty();
        for (i, &v) in samples.iter().enumerate() {
            shards[i % n_shards].record(v);
            single.record(v);
        }
        let mut merged = HistSnapshot::empty();
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(merged, single);
    }

    /// Sanity on the bucketing itself: every value's bucket covers it.
    #[test]
    fn bucket_covers_value(v in any::<u64>()) {
        let b = bucket_index(v);
        prop_assert!(b < HIST_BUCKETS);
        let (lo, hi) = bucket_bounds(b);
        prop_assert!(lo <= v && v <= hi);
    }
}

/// The live sharded histogram (exercised through the registry handle)
/// must agree with a single-threaded snapshot of the same samples.
#[test]
fn registry_hist_merges_shards_exactly() {
    // The other tests in this binary never touch the registry or the
    // enabled flag, so toggling it here races with nothing.
    obs::set_enabled(true);
    let h = obs::hist("test.bench.hist_props");
    let mut reference = HistSnapshot::empty();
    for v in 0..500u64 {
        let x = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h.record_shard(v as usize, x);
        reference.record(x);
    }
    let snap = obs::snapshot();
    obs::set_enabled(false);
    let recorded = snap.hist("test.bench.hist_props").expect("hist present");
    assert_eq!(recorded, &reference);
}
