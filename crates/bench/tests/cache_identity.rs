//! Cache-transparency guarantee: a cached fig3 quick run must produce
//! JSON identical to an uncached run (`QNLG_XOR_CACHE=0` escape hatch).
//!
//! This lives in its own integration-test binary (its own process) so
//! toggling the process-global cache state cannot race other tests.

/// Renders a report with the run-environment fields pinned, mirroring
/// `determinism.rs`: any byte difference left is a real divergence.
fn canonical_json(report: &qnlg_bench::Report) -> String {
    let ctx = qnlg_bench::RunContext {
        quick: true,
        threads: 0,
        git: "pinned".into(),
        obs: None,
        perf: None,
        series: None,
    };
    report.to_json(&ctx).render()
}

#[test]
fn fig3_quick_json_is_identical_with_cache_disabled() {
    // Cached pass first (populates the global cache), then the same run
    // with the cache forced off — equivalent to QNLG_XOR_CACHE=0.
    games::cache::set_enabled(true);
    let cached = qnlg_bench::experiments::fig3::run_with_threads(2, true);
    assert!(
        !games::cache::global().is_empty(),
        "cached run must populate the global cache"
    );

    games::cache::set_enabled(false);
    let uncached = qnlg_bench::experiments::fig3::run_with_threads(2, true);
    games::cache::set_enabled(true);

    assert_eq!(
        format!("{cached}"),
        format!("{uncached}"),
        "cache changed the text report"
    );
    assert_eq!(
        canonical_json(&cached),
        canonical_json(&uncached),
        "cache changed the JSON artifact"
    );
}

#[test]
fn env_escape_hatch_is_honored_lazily() {
    // set_enabled overrides whatever the env said; this just checks the
    // toggle round-trips, since the env itself was read (or preempted)
    // by the test above in this shared process.
    games::cache::set_enabled(false);
    assert!(!games::cache::enabled());
    games::cache::set_enabled(true);
    assert!(games::cache::enabled());
}
