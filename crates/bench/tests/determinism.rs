//! Worker-count invariance: sweep results must be a pure function of the
//! master seed and the grid, never of scheduling. These are the repo's
//! reproducibility guarantees — a figure regenerated on a 2-core laptop
//! and a 64-core server must be byte-identical.

use rand::Rng;

/// The canonical Figure-4-shaped grid (6 strategies × 10 loads) swept at
/// 1, 2, and `available_parallelism()` workers must give bit-identical
/// results, including every per-point RNG stream.
#[test]
fn par_sweep_6x10_grid_is_worker_count_invariant() {
    let grid = runtime::grid2(6, 10);
    let sweep = |threads: usize| {
        runtime::par_sweep_threads(threads, 0xab5_eed, &grid, |_, &(r, c), rng| {
            // Draw a few values so stream identity (not just seeding) is
            // checked, and fold in the coordinates.
            let x: f64 = rng.gen();
            let y: u64 = rng.gen();
            (r, c, x, y, rng.gen::<bool>())
        })
    };
    let reference = sweep(1);
    let auto = std::thread::available_parallelism().map_or(4, |n| n.get());
    for threads in [2, auto] {
        assert_eq!(sweep(threads), reference, "{threads} workers diverged");
    }
}

/// Renders a report as a `qnlg.bench.v1` JSON line with the
/// run-environment fields (`threads`, `obs`, `perf`, `series`) pinned,
/// so any remaining byte difference is a real determinism violation.
fn canonical_json(report: &qnlg_bench::Report) -> String {
    let ctx = qnlg_bench::RunContext {
        quick: true,
        threads: 0,
        git: "pinned".into(),
        obs: None,
        perf: None,
        series: None,
    };
    report.to_json(&ctx).render()
}

/// End-to-end: the rendered E2 (Figure 4) quick report is identical no
/// matter how many workers computed it.
#[test]
fn fig4_quick_report_is_identical_at_any_thread_count() {
    let sequential = qnlg_bench::experiments::fig4::run_with_threads(1, true);
    let reference_text = format!("{sequential}");
    let reference_json = canonical_json(&sequential);
    for threads in [2, runtime::thread_count()] {
        let report = qnlg_bench::experiments::fig4::run_with_threads(threads, true);
        assert_eq!(
            format!("{report}"),
            reference_text,
            "{threads} workers changed the text report"
        );
        assert_eq!(
            canonical_json(&report),
            reference_json,
            "{threads} workers changed the JSON artifact"
        );
    }
}

/// End-to-end: the rendered E1 (Figure 3) quick report is identical no
/// matter how many workers computed it. This is the hard exercise for
/// the canonicalizing value cache: different worker counts populate the
/// shared cache in different orders, and cached values must still be
/// identical because they are a pure function of each game's canonical
/// form (solver RNG derived from the canonical key).
#[test]
fn fig3_quick_report_is_identical_at_any_thread_count() {
    let sequential = qnlg_bench::experiments::fig3::run_with_threads(1, true);
    let reference_text = format!("{sequential}");
    let reference_json = canonical_json(&sequential);
    for threads in [2, runtime::thread_count()] {
        let report = qnlg_bench::experiments::fig3::run_with_threads(threads, true);
        assert_eq!(
            format!("{report}"),
            reference_text,
            "{threads} workers changed the text report"
        );
        assert_eq!(
            canonical_json(&report),
            reference_json,
            "{threads} workers changed the JSON artifact"
        );
    }
}

/// Chaos determinism: the fault-injection experiment — fault-window
/// edges interleaved with emissions, clamp evictions, governor
/// transitions and all — must be byte-identical at 1 and 4 workers, and
/// independent of whether the obs layer is recording. Obs toggling
/// happens inside this one test (the registry is process-global, but
/// the counters only feed the artifact's pruned `obs` section, which
/// `canonical_json` pins to `None` — so no other test here can observe
/// the toggle).
#[test]
fn fig4_faults_chaos_run_is_deterministic() {
    let sequential = qnlg_bench::experiments::faults_exp::run_with_threads(1, true);
    let reference_text = format!("{sequential}");
    let reference_json = canonical_json(&sequential);
    for threads in [2, 4] {
        let report = qnlg_bench::experiments::faults_exp::run_with_threads(threads, true);
        assert_eq!(
            format!("{report}"),
            reference_text,
            "{threads} workers changed the text report"
        );
        assert_eq!(
            canonical_json(&report),
            reference_json,
            "{threads} workers changed the JSON artifact"
        );
    }
    // Metrics must observe, never perturb: an instrumented run is
    // byte-identical to the unobserved reference.
    obs::reset();
    obs::set_enabled(true);
    let observed = qnlg_bench::experiments::faults_exp::run_with_threads(4, true);
    let snap = obs::snapshot();
    obs::set_enabled(false);
    assert_eq!(
        canonical_json(&observed),
        reference_json,
        "enabling obs changed the report"
    );
    assert!(
        snap.counter("qnlg.fallback.transitions").unwrap_or(0) > 0,
        "instrumented chaos run must record fallback transitions"
    );
}

/// Tracing must observe, never perturb: the chaos artifact — the run
/// with the most trace coverage (per-pair lifecycle, clamp evictions,
/// governor transitions) — is byte-identical with the event timeline
/// recording, at both a deliberately tiny ring (constant drop-oldest
/// wrapping) and a roomy one. Trace toggling happens inside this one
/// test; events never feed the canonical payload, so parallel tests
/// cannot observe it.
#[test]
fn trace_on_off_and_ring_capacity_leave_artifacts_identical() {
    let reference =
        canonical_json(&qnlg_bench::experiments::faults_exp::run_with_threads(2, true));
    for capacity in [256, 4096] {
        trace::reset();
        trace::set_capacity(capacity);
        trace::set_enabled(true);
        let report = qnlg_bench::experiments::faults_exp::run_with_threads(2, true);
        trace::set_enabled(false);
        let log = trace::drain();
        trace::set_capacity(trace::DEFAULT_CAPACITY);
        assert_eq!(
            canonical_json(&report),
            reference,
            "tracing at ring capacity {capacity} changed the artifact"
        );
        assert!(
            !log.events.is_empty(),
            "traced chaos run must record events at capacity {capacity}"
        );
    }
}

/// The batched entanglement data plane end-to-end: the E8
/// hardware-in-the-loop experiment (per-pair distributors running the
/// survivor-process fast path, arrival wheel, and Werner kernel) must be
/// byte-identical across thread counts and obs on/off. This is the
/// determinism guarantee for the dedicated emission/loss sub-streams:
/// replay depends only on the construction seed, never on polling or
/// scheduling.
#[test]
fn pipeline_batched_plane_is_deterministic() {
    let reference = canonical_json(&qnlg_bench::experiments::pipeline_exp::run(true));
    for _ in 0..2 {
        let report = qnlg_bench::experiments::pipeline_exp::run(true);
        assert_eq!(canonical_json(&report), reference, "rerun diverged");
    }
    obs::reset();
    obs::set_enabled(true);
    let observed = qnlg_bench::experiments::pipeline_exp::run(true);
    let snap = obs::snapshot();
    obs::set_enabled(false);
    assert_eq!(
        canonical_json(&observed),
        reference,
        "enabling obs changed the pipeline report"
    );
    assert!(
        snap.counter("qnet.epr.emitted").unwrap_or(0) > 0,
        "instrumented run must record emissions"
    );
}

/// The sharded SoA engine end-to-end: the fig4-scale quick artifact
/// (per-point perf pinned to null) must be byte-identical across worker
/// counts, and a raw engine run must be byte-identical across shard
/// counts and obs on/off. This is the determinism guarantee for the
/// per-pair sub-stream design: partition and scheduling decide who
/// computes a draw, never its value.
#[test]
fn fig4_scale_quick_artifact_is_shard_thread_and_obs_invariant() {
    let sequential = qnlg_bench::experiments::scale_exp::run_full(1, true, false);
    let reference_text = format!("{sequential}");
    let reference_json = canonical_json(&sequential);
    for threads in [2, 4] {
        let report = qnlg_bench::experiments::scale_exp::run_full(threads, true, false);
        assert_eq!(
            format!("{report}"),
            reference_text,
            "{threads} workers changed the text report"
        );
        assert_eq!(
            canonical_json(&report),
            reference_json,
            "{threads} workers changed the JSON artifact"
        );
    }

    // Raw engine: shard-count sweep at several worker counts, plus obs
    // toggling, all compared against the single-shard sequential run.
    use loadbalance::server::Discipline;
    use loadbalance::shard::{run_scaled, ScaleConfig, ScaleStrategy};
    use loadbalance::sim::SimConfig;
    use loadbalance::task::ArrivalModel;
    let mut cfg = ScaleConfig::new(
        SimConfig {
            n_balancers: 120,
            n_servers: 100,
            timesteps: 300,
            warmup: 75,
            discipline: Discipline::PaperPairedC,
        },
        ArrivalModel::paper(),
    );
    cfg.shards = 1;
    cfg.threads = 1;
    let reference = format!(
        "{:?}",
        run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 0xfa57).unwrap()
    );
    for shards in [1, 4, 16] {
        for threads in [1, 2, 4] {
            cfg.shards = shards;
            cfg.threads = threads;
            let r = format!(
                "{:?}",
                run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 0xfa57).unwrap()
            );
            assert_eq!(r, reference, "shards={shards} threads={threads} diverged");
        }
    }
    obs::reset();
    obs::set_enabled(true);
    cfg.shards = 4;
    cfg.threads = 2;
    let observed = format!(
        "{:?}",
        run_scaled(&cfg, ScaleStrategy::quantum_ideal(), 0xfa57).unwrap()
    );
    let snap = obs::snapshot();
    obs::set_enabled(false);
    assert_eq!(observed, reference, "enabling obs changed the result");
    assert!(
        snap.counter("lb.tasks.assigned").unwrap_or(0) > 0,
        "instrumented scale run must record assigned tasks"
    );
}

/// The closed-form GHZ kernel end-to-end: the ghz quick artifact
/// (Mermin N × visibility sweep + Magic Square, all through the
/// one-draw-per-round kernel) must be byte-identical across worker
/// counts, with obs recording on, and with the event timeline recording
/// — the CI determinism arm for `BENCH_ghz.json`.
#[test]
fn ghz_kernel_artifact_is_thread_obs_and_trace_invariant() {
    let sequential = qnlg_bench::experiments::ghz_exp::run_with_threads(1, true);
    let reference_text = format!("{sequential}");
    let reference_json = canonical_json(&sequential);
    for threads in [2, 4] {
        let report = qnlg_bench::experiments::ghz_exp::run_with_threads(threads, true);
        assert_eq!(
            format!("{report}"),
            reference_text,
            "{threads} workers changed the text report"
        );
        assert_eq!(
            canonical_json(&report),
            reference_json,
            "{threads} workers changed the JSON artifact"
        );
    }
    // Metrics must observe, never perturb — and the instrumented run
    // must feed the rounds counter behind perf.rounds_per_sec.
    obs::reset();
    obs::set_enabled(true);
    let observed = qnlg_bench::experiments::ghz_exp::run_with_threads(2, true);
    let snap = obs::snapshot();
    obs::set_enabled(false);
    assert_eq!(
        canonical_json(&observed),
        reference_json,
        "enabling obs changed the ghz report"
    );
    assert!(
        snap.counter("games.ghz.rounds").unwrap_or(0) > 0,
        "instrumented ghz run must count kernel rounds"
    );
    // Tracing must observe, never perturb.
    trace::reset();
    trace::set_enabled(true);
    let traced = qnlg_bench::experiments::ghz_exp::run_with_threads(2, true);
    trace::set_enabled(false);
    let _ = trace::drain();
    assert_eq!(
        canonical_json(&traced),
        reference_json,
        "enabling trace changed the ghz report"
    );
}

/// The metro-topology plane end-to-end: the E10 quick artifact (chain
/// closed forms + oracle pins, contention scheduling, edge-cut blast
/// radius, per-pair governors) must be byte-identical across worker
/// counts, with obs recording on, and with the event timeline recording
/// — the CI determinism arm for `BENCH_topology.json`. The sequential
/// parts (star epochs, tree timeline) are seeded per part, and the
/// par_sweep CHSH arm is seeded per point, so thread count must never
/// leak into the artifact.
#[test]
fn topology_artifact_is_thread_obs_and_trace_invariant() {
    let sequential = qnlg_bench::experiments::topology_exp::run_with_threads(1, true);
    let reference_text = format!("{sequential}");
    let reference_json = canonical_json(&sequential);
    for threads in [2, 4] {
        let report = qnlg_bench::experiments::topology_exp::run_with_threads(threads, true);
        assert_eq!(
            format!("{report}"),
            reference_text,
            "{threads} workers changed the text report"
        );
        assert_eq!(
            canonical_json(&report),
            reference_json,
            "{threads} workers changed the JSON artifact"
        );
    }
    // Metrics must observe, never perturb — and the instrumented run
    // must feed the chain counters plus the shared emission counter
    // behind perf.pairs_per_sec.
    obs::reset();
    obs::set_enabled(true);
    let observed = qnlg_bench::experiments::topology_exp::run_with_threads(2, true);
    let snap = obs::snapshot();
    obs::set_enabled(false);
    assert_eq!(
        canonical_json(&observed),
        reference_json,
        "enabling obs changed the topology report"
    );
    for counter in [
        "qnet.topology.routes",
        "qnet.topology.delivered",
        "qnet.topology.starved",
        "qnet.topology.budget_spent",
        "qnet.epr.emitted",
    ] {
        assert!(
            snap.counter(counter).unwrap_or(0) > 0,
            "instrumented topology run must bump {counter}"
        );
    }
    // Tracing must observe, never perturb — and the chain lifecycle
    // must actually land on the timeline.
    trace::reset();
    trace::set_enabled(true);
    let traced = qnlg_bench::experiments::topology_exp::run_with_threads(2, true);
    trace::set_enabled(false);
    let log = trace::drain();
    assert_eq!(
        canonical_json(&traced),
        reference_json,
        "enabling trace changed the topology report"
    );
    assert!(
        log.events
            .iter()
            .any(|e| matches!(e.track, trace::Track::Chain(_))),
        "traced topology run must record chain-track events"
    );
}

/// The served decision path end-to-end: the E11 quick artifact (control,
/// fault, and starvation soaks over pre-drawn SPSC decision lanes) must
/// be byte-identical across reruns, across ambient worker counts, with
/// obs recording on, and with the event timeline recording — the CI
/// determinism arm for `BENCH_serve.json`. Slot purity is the load-
/// bearing property: every ring slot is a function of (master seed,
/// endpoint, sequence), with slot sim-time derived from the sequence
/// number, so *when* the refill pump runs can never change *what* it
/// draws. The wall-clock measurement arms report to obs and stderr only,
/// so they never enter the canonical payload this test pins.
#[test]
fn serve_artifact_is_rerun_obs_and_trace_invariant() {
    let sequential = qnlg_bench::experiments::serve_exp::run(true);
    let reference_text = format!("{sequential}");
    let reference_json = canonical_json(&sequential);
    // The service core is single-threaded by construction; ambient
    // worker counts (QNLG_THREADS) must not leak into the artifact.
    // Reruns under the test harness's parallel scheduling stand in for
    // the 1/2/4-worker sweep the par_sweep experiments do explicitly.
    for run in 0..2 {
        let report = qnlg_bench::experiments::serve_exp::run(true);
        assert_eq!(
            format!("{report}"),
            reference_text,
            "rerun {run} changed the text report"
        );
        assert_eq!(
            canonical_json(&report),
            reference_json,
            "rerun {run} changed the JSON artifact"
        );
    }
    // Metrics must observe, never perturb — and the instrumented run
    // must feed both the lane counters and the hot-path counters behind
    // perf.decisions_per_sec / p99_ns.
    obs::reset();
    obs::set_enabled(true);
    let observed = qnlg_bench::experiments::serve_exp::run(true);
    let snap = obs::snapshot();
    obs::set_enabled(false);
    assert_eq!(
        canonical_json(&observed),
        reference_json,
        "enabling obs changed the serve report"
    );
    for counter in [
        "qnlg.serve.decisions",
        "qnlg.serve.slots",
        "qnlg.serve.exhausted",
        "qnlg.serve.hot.decisions",
        "qnlg.serve.hot.ns",
    ] {
        assert!(
            snap.counter(counter).unwrap_or(0) > 0,
            "instrumented serve run must bump {counter}"
        );
    }
    assert!(
        snap.hist("qnlg.serve.decision_latency_ns")
            .is_some_and(|h| h.count > 0),
        "instrumented serve run must sample decision latency"
    );
    // Tracing must observe, never perturb — and the endpoint lanes must
    // land on the timeline (refill instants at minimum).
    trace::reset();
    trace::set_enabled(true);
    let traced = qnlg_bench::experiments::serve_exp::run(true);
    trace::set_enabled(false);
    let log = trace::drain();
    assert_eq!(
        canonical_json(&traced),
        reference_json,
        "enabling trace changed the serve report"
    );
    assert!(
        log.events
            .iter()
            .any(|e| matches!(e.track, trace::Track::Endpoint(_))),
        "traced serve run must record endpoint-track events"
    );
}

/// The JSON artifact line for fig4 must validate against the schema and
/// carry the fields the acceptance criteria promise: seed, thread count,
/// per-point SimResult fields, and Wilson intervals.
#[test]
fn fig4_artifact_line_matches_schema() {
    let report = qnlg_bench::experiments::fig4::run_with_threads(2, true);
    let ctx = qnlg_bench::RunContext {
        quick: true,
        threads: 2,
        git: "test".into(),
        obs: None,
        perf: None,
        series: None,
    };
    let line = report.to_json(&ctx).render();
    let doc = qnlg_bench::report::validate_artifact_line(&line).expect("valid artifact line");
    assert_eq!(doc.get("experiment").unwrap().as_str(), Some("fig4"));
    assert_eq!(doc.get("seed").unwrap().as_i64(), Some(40));
    assert_eq!(doc.get("threads").unwrap().as_i64(), Some(2));
    let points = doc.get("points").unwrap().as_arr().unwrap();
    assert!(!points.is_empty());
    for p in points {
        for field in ["strategy", "load", "avg_queue_len", "cc_colocation_rate"] {
            assert!(p.get(field).is_some(), "point missing {field}: {}", p.render());
        }
    }
    let intervals = doc.get("intervals").unwrap().as_obj().unwrap();
    assert!(!intervals.is_empty(), "fig4 must report Wilson intervals");
    for (name, ci) in intervals {
        let lo = ci.get("lo").unwrap().as_f64().unwrap();
        let hi = ci.get("hi").unwrap().as_f64().unwrap();
        let est = ci.get("estimate").unwrap().as_f64().unwrap();
        assert!(lo <= est && est <= hi, "interval {name} out of order");
    }
}
