//! Worker-count invariance: sweep results must be a pure function of the
//! master seed and the grid, never of scheduling. These are the repo's
//! reproducibility guarantees — a figure regenerated on a 2-core laptop
//! and a 64-core server must be byte-identical.

use rand::Rng;

/// The canonical Figure-4-shaped grid (6 strategies × 10 loads) swept at
/// 1, 2, and `available_parallelism()` workers must give bit-identical
/// results, including every per-point RNG stream.
#[test]
fn par_sweep_6x10_grid_is_worker_count_invariant() {
    let grid = runtime::grid2(6, 10);
    let sweep = |threads: usize| {
        runtime::par_sweep_threads(threads, 0xab5_eed, &grid, |_, &(r, c), rng| {
            // Draw a few values so stream identity (not just seeding) is
            // checked, and fold in the coordinates.
            let x: f64 = rng.gen();
            let y: u64 = rng.gen();
            (r, c, x, y, rng.gen::<bool>())
        })
    };
    let reference = sweep(1);
    let auto = std::thread::available_parallelism().map_or(4, |n| n.get());
    for threads in [2, auto] {
        assert_eq!(sweep(threads), reference, "{threads} workers diverged");
    }
}

/// End-to-end: the rendered E2 (Figure 4) quick report is identical no
/// matter how many workers computed it.
#[test]
fn fig4_quick_report_is_identical_at_any_thread_count() {
    let sequential = qnlg_bench::experiments::fig4::run_with_threads(1, true);
    for threads in [2, runtime::thread_count()] {
        assert_eq!(
            qnlg_bench::experiments::fig4::run_with_threads(threads, true),
            sequential,
            "{threads} workers changed the report"
        );
    }
}
