//! Steady-state allocation audit for the served decision path.
//!
//! The claim behind the sub-µs p99: once the service is warm (rings
//! filled, distributor slabs grown, obs counters lazily registered),
//! the decision loop — ring `pop`, outcome-table placement, inline
//! fallback draws on exhaustion, and the refill pump feeding new slots —
//! performs **zero** heap allocation. Mirrors `qnet/tests/alloc.rs`:
//! a counting `#[global_allocator]` owns this test process, and the
//! single-test harness keeps the measured window single-threaded.

use serve::{ServeConfig, ServiceCore};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_decision_loop_allocates_nothing() {
    let config = ServeConfig {
        n_endpoints: 2,
        // Sized so refills fire during both warmup and the measured
        // window (500 pops per endpoint crosses the low-water mark).
        ring_capacity: 512,
        low_water: 256,
        refill_batch: 256,
        ..ServeConfig::typical(0xA110C)
    };
    let mut core = ServiceCore::new(&config);

    // Warmup: fill the rings (grows distributor slabs and registers the
    // lazily-created obs statics via a flush), then run the loop shape
    // the measurement uses.
    core.fill_all();
    core.flush_obs();
    let mut consumed_quantum = 0u64;
    for i in 0..500u64 {
        for e in 0..2 {
            let p = core.decide(e, i % 2 == 0, i % 3 == 0);
            consumed_quantum += u64::from(p.tier == serve::TIER_QUANTUM);
        }
        core.pump_all();
    }
    assert!(consumed_quantum > 0, "warmup must serve quantum decisions");

    // Measured window: the same traffic, including refills and an
    // exhaustion burst that exercises the inline fallback stream.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..500u64 {
        for e in 0..2 {
            let _ = core.decide(e, i % 2 == 0, i % 5 == 0);
        }
        core.pump_all();
    }
    // Drain endpoint 0 dry so the exhausted path runs in-window too.
    for i in 0..2000u64 {
        let _ = core.decide(0, i % 2 == 0, false);
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;

    let summary = core.summary();
    assert!(
        summary.endpoints.exhausted > 0,
        "the exhausted fallback path must have been exercised"
    );
    assert!(
        summary.endpoints.decisions >= 4_000,
        "the hot path must be under real load"
    );
    assert_eq!(
        delta, 0,
        "steady-state decision loop performed {delta} heap allocations"
    );
}
