//! Property battery for the SPSC decision ring: random interleavings of
//! stage / publish / pop checked slot-for-slot against a queue model.
//!
//! The model is the ring's specification: staged values are invisible
//! until a publish, published values come out in FIFO order, a full ring
//! rejects stages, and an empty ring returns `None`. Running the same
//! random op tape against both and comparing every return value covers
//! wraparound (tiny capacities, long tapes), the capacity-1 edge, and
//! full/empty boundary transitions — the cases a hand-written test
//! enumerates one at a time.

use proptest::prelude::*;
use serve::ring::spsc;
use std::collections::VecDeque;

/// One scripted operation on the ring (values are assigned by the
/// driver so every staged value is unique and order is checkable).
#[derive(Debug, Clone, Copy)]
enum Op {
    Stage,
    Publish,
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4).prop_map(|k| match k {
        // Bias toward stage/pop so tapes exercise full and empty states.
        0 | 3 => Op::Stage,
        1 => Op::Publish,
        _ => Op::Pop,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ring_matches_queue_model_under_random_interleavings(
        capacity_exp in 0u32..7,
        ops in proptest::collection::vec(op_strategy(), 0..600),
    ) {
        let capacity = 1usize << capacity_exp;
        let (mut tx, mut rx) = spsc::<u64>(capacity);
        // Model state: published FIFO plus the invisible staged tail.
        let mut published: VecDeque<u64> = VecDeque::new();
        let mut staged: VecDeque<u64> = VecDeque::new();
        let mut next_value = 0u64;
        for op in ops {
            match op {
                Op::Stage => {
                    let expect_ok = published.len() + staged.len() < capacity;
                    let ok = tx.stage(next_value);
                    prop_assert_eq!(ok, expect_ok, "stage at occupancy {}/{}",
                        published.len() + staged.len(), capacity);
                    if ok {
                        staged.push_back(next_value);
                        next_value += 1;
                    }
                }
                Op::Publish => {
                    tx.publish();
                    published.append(&mut staged);
                }
                Op::Pop => {
                    let got = rx.pop();
                    let expect = published.pop_front();
                    prop_assert_eq!(got, expect, "pop with {} published", published.len() + 1);
                }
            }
        }
        // Drain: everything published must come out, staged never leaks.
        tx.publish();
        published.append(&mut staged);
        while let Some(expect) = published.pop_front() {
            prop_assert_eq!(rx.pop(), Some(expect));
        }
        prop_assert_eq!(rx.pop(), None, "ring must be empty after full drain");
    }

    #[test]
    fn occupancy_accounting_stays_consistent(
        capacity_exp in 0u32..7,
        ops in proptest::collection::vec(op_strategy(), 0..300),
    ) {
        let capacity = 1usize << capacity_exp;
        let (mut tx, mut rx) = spsc::<u64>(capacity);
        let mut in_ring = 0usize; // staged + published
        let mut popped_available = 0usize; // published only
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Stage => {
                    if tx.stage(next) {
                        next += 1;
                        in_ring += 1;
                    } else {
                        prop_assert_eq!(in_ring, capacity, "stage rejected while not full");
                    }
                }
                Op::Publish => {
                    tx.publish();
                    popped_available = in_ring;
                }
                Op::Pop => {
                    if rx.pop().is_some() {
                        in_ring -= 1;
                        popped_available -= 1;
                    } else {
                        prop_assert_eq!(popped_available, 0, "pop failed with published slots");
                    }
                }
            }
            // `occupied` reads the consumer position fresh, so with both
            // halves on one thread it is exact; consumer-side length is
            // a lower bound (its tail cache refreshes only on apparent
            // emptiness).
            prop_assert_eq!(tx.occupied(), in_ring);
            prop_assert_eq!(tx.free(), capacity - in_ring);
            prop_assert!(rx.len() <= in_ring);
        }
    }
}

/// Cross-thread stress with randomized batch sizes: every value arrives
/// exactly once, in order, across many wraparounds — the batched-publish
/// visibility guarantee under a real memory model rather than the
/// single-threaded model above.
#[test]
fn concurrent_randomized_batches_preserve_order() {
    for (capacity, total) in [(1usize, 5_000u64), (8, 50_000), (64, 100_000)] {
        let (mut tx, mut rx) = spsc::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            // Deterministic but irregular batch schedule.
            let mut batch_seed = runtime::SplitMix64::new(0xBA7C4 ^ total);
            while next < total {
                let want = 1 + (batch_seed.gen_range(31) as u64);
                let mut staged = 0;
                while staged < want && next < total && tx.stage(next) {
                    next += 1;
                    staged += 1;
                }
                tx.publish();
                if staged == 0 {
                    // Yield, don't spin: CI runners may have one core,
                    // where a spin wait serializes against preemption.
                    std::thread::yield_now();
                }
            }
        });
        let mut expect = 0u64;
        while expect < total {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect, "capacity {capacity}: out of order");
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }
}
