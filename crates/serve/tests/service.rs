//! End-to-end service tests: governor behaviour under faults, and the
//! Unix-socket protocol round trip.

use qnet::{FaultKind, FaultPlan, LinkSide, SimTime};
use serve::{ServeConfig, Service, ServiceCore, TIER_QUANTUM};
use std::sync::Arc;
use std::time::Duration;

fn base_config(seed: u64) -> ServeConfig {
    ServeConfig {
        n_servers: 32,
        n_endpoints: 2,
        ring_capacity: 512,
        low_water: 128,
        refill_batch: 256,
        ..ServeConfig::typical(seed)
    }
}

#[test]
fn fault_soak_trips_the_governor_and_recovers() {
    // A long outage on both links starves the plane: produced slots must
    // degrade to the classical tier, then return to quantum after the
    // fault clears.
    let mut config = base_config(21);
    config.distributor.faults = FaultPlan::periodic(
        FaultKind::LinkOutage(LinkSide::Both),
        SimTime::from_micros(2_000),
        Duration::from_micros(40_000),
        Duration::from_micros(8_000),
        SimTime::from_micros(120_000),
    );
    let mut core = ServiceCore::new(&config);
    let mut tiers_seen = [false; 3];
    // 6000 decisions × 20 µs sim period = 120 ms of sim time, spanning
    // three outage windows.
    for i in 0..6_000u64 {
        core.pump_all();
        let p = core.decide(0, i % 2 == 0, i % 3 == 0);
        tiers_seen[(p.tier as usize).min(2)] = true;
    }
    let summary = core.finish();
    assert!(
        summary.feeds.transitions > 0,
        "outages must trip the governor"
    );
    assert!(tiers_seen[0], "healthy windows must serve quantum");
    assert!(
        tiers_seen[1] || tiers_seen[2],
        "outage windows must serve degraded tiers"
    );
    assert!(summary.feeds.misses > 0, "outages must cause misses");
}

#[cfg(unix)]
#[test]
fn socket_round_trip_matches_in_process_decisions() {
    use serve::socket::{Client, SocketServer};

    let config = base_config(33);
    // Reference: the same seed through the single-threaded core.
    let mut reference = ServiceCore::new(&config);
    reference.fill_all();

    let service = Arc::new(Service::start(&config));
    let path = std::env::temp_dir().join(format!("qnlg-serve-test-{}.sock", std::process::id()));
    let mut server = SocketServer::start(&path, Arc::clone(&service)).expect("bind socket");

    let mut client = Client::connect(&path).expect("connect");
    for i in 0..200u64 {
        let (x, y) = (i % 2 == 0, i % 3 == 0);
        let got = client.decide(0, x, y).expect("socket decision");
        let want = reference.decide(0, x, y);
        assert_eq!(got, want, "socket decision {i} diverged from in-process");
        assert!(got.first < 32 && got.second < 32);
    }

    // Out-of-range endpoints close the connection with an error, not a
    // bogus decision.
    let mut bad = Client::connect(&path).expect("connect");
    assert!(bad.decide(99, false, false).is_err());

    // Concurrent clients on distinct endpoints don't interfere.
    let path2 = path.clone();
    let other = std::thread::spawn(move || {
        let mut c = Client::connect(&path2).expect("connect");
        for i in 0..200u64 {
            let p = c.decide(1, i % 2 == 0, false).expect("socket decision");
            assert!(p.first < 32 && p.second < 32);
        }
    });
    for i in 0..100u64 {
        let p = client.decide(0, false, i % 2 == 0).expect("socket decision");
        assert!(p.first < 32 && p.second < 32);
    }
    other.join().unwrap();

    // Graceful stop: drains handlers and removes the socket file.
    server.stop();
    assert!(!path.exists(), "socket file must be removed on stop");
    drop(client);
}

#[test]
fn healthy_plane_serves_quantum_overwhelmingly() {
    let mut core = ServiceCore::new(&base_config(55));
    core.fill_all();
    let mut quantum = 0u64;
    let n = 400u64;
    for i in 0..n {
        let p = core.decide(1, i % 2 == 0, i % 5 == 0);
        quantum += u64::from(p.tier == TIER_QUANTUM);
    }
    assert!(
        quantum as f64 / n as f64 > 0.9,
        "healthy plane served only {quantum}/{n} quantum decisions"
    );
}

#[test]
fn shutdown_flushes_obs_exactly_once() {
    obs::set_enabled(true);
    let before = obs::snapshot()
        .counter("qnlg.serve.decisions")
        .unwrap_or(0);
    let mut svc = Service::start(&base_config(77));
    for i in 0..500 {
        svc.decide(i % 2, i % 3 == 0, i % 7 == 0);
    }
    let s1 = svc.shutdown();
    let s2 = svc.shutdown(); // idempotent: must not double-flush
    assert_eq!(s1, s2);
    drop(svc); // Drop after shutdown: also must not double-flush
    let after = obs::snapshot()
        .counter("qnlg.serve.decisions")
        .unwrap_or(0);
    assert_eq!(
        after - before,
        500,
        "decision counter must reflect exactly one flush of 500 decisions"
    );
    // Sim-time decision cadence is wall-clock-free, so a second service
    // with the same seed reproduces the same slot stream.
    let mut svc2 = Service::start(&base_config(77));
    let p = svc2.decide(0, true, true);
    let mut core = ServiceCore::new(&base_config(77));
    core.fill_all();
    assert_eq!(p, core.decide(0, true, true));
    svc2.shutdown();
}

#[test]
fn soak_interrupted_midway_still_yields_complete_summary() {
    // The SIGINT path in `repro serve --soak` reduces to this: stop
    // consuming at an arbitrary point, shut down, and the summary must
    // still be internally consistent (counters balanced, flush done).
    let mut svc = Service::start(&base_config(88));
    for i in 0..137 {
        svc.decide(i % 2, false, true);
    }
    let s = svc.shutdown();
    assert_eq!(s.endpoints.decisions, 137);
    let consumed: u64 = s.endpoints.by_tier.iter().sum();
    assert_eq!(consumed, 137, "every decision must be tier-accounted");
}
