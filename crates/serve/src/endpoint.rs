//! The two halves of a served decision lane: the background
//! [`EndpointFeed`] (producer) and the hot-path [`DecisionEndpoint`]
//! (consumer), joined by one SPSC ring.
//!
//! The feed owns everything slow and stateful — the entanglement
//! distributor, the fallback governor, the trace lane — and refills the
//! ring in batches whenever occupancy drops below the low-water mark.
//! The endpoint owns nothing but the ring's consumer half, a dedicated
//! fallback RNG stream, and plain `u64` counters: a decision is `pop` +
//! table lookup, with no atomics beyond the ring protocol, no obs calls,
//! and no allocation. Counters flush to `qnlg.serve.*` obs statics in
//! deltas, so flushing is idempotent and the service can guarantee an
//! exactly-once final flush on shutdown.

use crate::decision::{
    self, DecisionSlot, Placement, TIER_CLASSICAL, TIER_INDEPENDENT, TIER_QUANTUM,
};
use crate::ring::{Consumer, Producer};
use loadbalance::degrade::{CoordinationMode, FallbackGovernor, HysteresisConfig};
use obs::LazyCounter;
use qnet::{DistributorConfig, EntanglementDistributor, SimTime};
use rand::Rng;
use runtime::SplitMix64;

/// Decisions answered on the hot path (all endpoints, all tiers).
static SERVE_DECISIONS: LazyCounter = LazyCounter::new("qnlg.serve.decisions");
/// Decisions answered from the quantum tier (a pre-drawn CHSH slot).
static SERVE_TIER_QUANTUM: LazyCounter = LazyCounter::new("qnlg.serve.tier.quantum");
/// Decisions answered from the classical-shared tier.
static SERVE_TIER_CLASSICAL: LazyCounter = LazyCounter::new("qnlg.serve.tier.classical");
/// Decisions answered from the independent tier.
static SERVE_TIER_INDEPENDENT: LazyCounter = LazyCounter::new("qnlg.serve.tier.independent");
/// Decisions that found an empty ring and fell back inline.
static SERVE_EXHAUSTED: LazyCounter = LazyCounter::new("qnlg.serve.exhausted");
/// Slots staged into rings by refill pumps.
static SERVE_SLOTS: LazyCounter = LazyCounter::new("qnlg.serve.slots");
/// Refill batches published.
static SERVE_REFILLS: LazyCounter = LazyCounter::new("qnlg.serve.refills");
/// Quantum-mode slots that missed (no buffered pair at consumption time).
static SERVE_MISSES: LazyCounter = LazyCounter::new("qnlg.serve.misses");

/// Counters describing one endpoint's consumed decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Total decisions answered.
    pub decisions: u64,
    /// Decisions per tier (indexed quantum, classical, independent).
    pub by_tier: [u64; 3],
    /// Decisions that found the ring empty and used the inline fallback
    /// (a subset of the classical-tier count).
    pub exhausted: u64,
}

/// Counters describing one feed's produced slots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedStats {
    /// Slots staged and published.
    pub produced: u64,
    /// Refill batches published.
    pub refills: u64,
    /// Quantum-mode rounds that found no buffered pair.
    pub misses: u64,
    /// Governor mode transitions so far.
    pub transitions: u64,
}

/// Producer half of a decision lane: draws slots deterministically and
/// keeps the ring above its low-water mark.
pub struct EndpointFeed {
    id: u32,
    producer: Producer<DecisionSlot>,
    distributor: EntanglementDistributor,
    governor: FallbackGovernor,
    endpoint_seed: u64,
    next_seq: u64,
    period_ns: u64,
    n_servers: u32,
    low_water: usize,
    batch: usize,
    track: trace::Track,
    produced: u64,
    refills: u64,
    misses: u64,
    flushed: FeedStats,
}

impl EndpointFeed {
    /// Builds a feed over `producer`. `endpoint_seed` is the endpoint's
    /// stream-family seed (slot sub-streams derive from it), `period_ns`
    /// the simulated time between consecutive decisions, and
    /// `low_water`/`batch` the refill policy. `rng` seeds the
    /// distributor's internal streams.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        id: u32,
        producer: Producer<DecisionSlot>,
        distributor_config: DistributorConfig,
        hysteresis: HysteresisConfig,
        endpoint_seed: u64,
        period_ns: u64,
        n_servers: u32,
        low_water: usize,
        batch: usize,
        rng: &mut R,
    ) -> Self {
        assert!(n_servers >= 2, "need at least two servers");
        assert!(period_ns > 0, "decision period must be positive");
        assert!(batch > 0, "refill batch must be positive");
        assert!(
            low_water < producer.capacity(),
            "low-water mark must leave refill headroom"
        );
        EndpointFeed {
            id,
            distributor: EntanglementDistributor::new(distributor_config, rng),
            governor: FallbackGovernor::new(hysteresis),
            endpoint_seed,
            next_seq: 0,
            period_ns,
            n_servers,
            low_water,
            batch,
            track: trace::Track::Endpoint(id),
            produced: 0,
            refills: 0,
            misses: 0,
            flushed: FeedStats::default(),
            producer,
        }
    }

    /// Endpoint id this feed serves.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The live fallback governor.
    pub fn governor(&self) -> &FallbackGovernor {
        &self.governor
    }

    /// The entanglement distributor backing this lane.
    pub fn distributor(&self) -> &EntanglementDistributor {
        &self.distributor
    }

    /// Production counters so far.
    pub fn stats(&self) -> FeedStats {
        FeedStats {
            produced: self.produced,
            refills: self.refills,
            misses: self.misses,
            transitions: self.governor.transitions(),
        }
    }

    /// Draws the next slot in sequence. The slot's simulated consumption
    /// time is `(seq + 1) · period`, so the draw is independent of when
    /// (in wall time) the refill happens.
    fn draw_next(&mut self) -> DecisionSlot {
        let seq = self.next_seq;
        self.next_seq += 1;
        let now = SimTime::from_nanos((seq + 1).saturating_mul(self.period_ns));
        self.distributor.advance_to(now);
        let mut rng = decision::slot_rng(self.endpoint_seed, seq);
        let mode_before = self.governor.mode();
        let slot = match mode_before {
            CoordinationMode::Quantum => match self.distributor.take_werner(now) {
                Some(pair) => {
                    self.governor.observe(1, 1);
                    decision::draw_quantum(seq, self.n_servers, &pair, &mut rng)
                }
                None => {
                    self.misses += 1;
                    self.governor.observe(0, 1);
                    decision::draw_classical_shared(seq, self.n_servers, &mut rng)
                }
            },
            CoordinationMode::ClassicalShared => {
                // Keep polling the hardware at the decision cadence so
                // the governor can see delivery recover (the Degrading
                // wrapper's probe discipline).
                let delivered = self.distributor.take_werner(now).is_some() as u64;
                self.governor.observe(delivered, 1);
                decision::draw_classical_shared(seq, self.n_servers, &mut rng)
            }
            CoordinationMode::IndependentRandom => {
                let delivered = self.distributor.take_werner(now).is_some() as u64;
                self.governor.observe(delivered, 1);
                decision::draw_independent(seq, self.n_servers, &mut rng)
            }
        };
        if trace::enabled() {
            let mode_after = self.governor.mode();
            if mode_after != mode_before {
                let name = match mode_after {
                    CoordinationMode::Quantum => "mode.quantum",
                    CoordinationMode::ClassicalShared => "mode.classical-shared",
                    CoordinationMode::IndependentRandom => "mode.independent-random",
                };
                trace::instant_sim(self.track, name, now.as_nanos());
            }
        }
        slot
    }

    /// One refill pass: if ring occupancy has dropped below the
    /// low-water mark, stages up to a batch of freshly drawn slots and
    /// publishes them with one release store. Returns the number of
    /// slots published (0 when the ring is still above the mark).
    pub fn pump(&mut self) -> usize {
        if self.producer.occupied() > self.low_water {
            return 0;
        }
        self.fill(self.batch)
    }

    /// Stages up to `limit` slots regardless of the low-water mark
    /// (bounded by ring space) and publishes them. Used by `pump`, by
    /// the deterministic soak (which pre-fills synchronously), and by
    /// the bench harness.
    pub fn fill(&mut self, limit: usize) -> usize {
        let mut staged = 0;
        while staged < limit && self.producer.free() > 0 {
            let slot = self.draw_next();
            let ok = self.producer.stage(slot);
            debug_assert!(ok, "free() > 0 but stage failed");
            staged += 1;
        }
        if staged > 0 {
            self.producer.publish();
            self.produced += staged as u64;
            self.refills += 1;
            if trace::enabled() {
                trace::instant_sim(
                    self.track,
                    "refill",
                    self.next_seq.saturating_mul(self.period_ns),
                );
            }
        }
        staged
    }

    /// Flushes production counter deltas to the `qnlg.serve.*` obs
    /// statics. Idempotent: flushing twice adds nothing new.
    pub fn flush_obs(&mut self) {
        let now = self.stats();
        SERVE_SLOTS.add(now.produced - self.flushed.produced);
        SERVE_REFILLS.add(now.refills - self.flushed.refills);
        SERVE_MISSES.add(now.misses - self.flushed.misses);
        self.flushed = now;
    }
}

/// Consumer half of a decision lane: the allocation-free hot path.
pub struct DecisionEndpoint {
    id: u32,
    consumer: Consumer<DecisionSlot>,
    fallback: SplitMix64,
    n_servers: u32,
    decisions: u64,
    by_tier: [u64; 3],
    exhausted: u64,
    flushed: EndpointStats,
}

impl DecisionEndpoint {
    /// Builds the endpoint over `consumer`. `endpoint_seed` must be the
    /// same family seed the feed uses, so the inline-fallback stream
    /// stays disjoint from every slot sub-stream.
    pub fn new(id: u32, consumer: Consumer<DecisionSlot>, endpoint_seed: u64, n_servers: u32) -> Self {
        DecisionEndpoint {
            id,
            consumer,
            fallback: decision::fallback_rng(endpoint_seed),
            n_servers,
            decisions: 0,
            by_tier: [0; 3],
            exhausted: 0,
            flushed: EndpointStats::default(),
        }
    }

    /// Endpoint id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Answers one placement query. The hot path: ring `pop`, outcome
    /// table lookup, two conditional selects, three counter bumps — no
    /// locks, no allocation, no obs, no syscalls. An empty ring degrades
    /// inline to a classical-shared draw from the endpoint's dedicated
    /// fallback stream instead of blocking.
    #[inline]
    pub fn decide(&mut self, x: bool, y: bool) -> Placement {
        self.decisions += 1;
        match self.consumer.pop() {
            Some(slot) => {
                let tier = (slot.tier as usize).min(2);
                self.by_tier[tier] += 1;
                slot.place(x, y)
            }
            None => {
                self.exhausted += 1;
                self.by_tier[TIER_CLASSICAL as usize] += 1;
                let slot =
                    decision::draw_classical_shared(u64::MAX, self.n_servers, &mut self.fallback);
                slot.place(x, y)
            }
        }
    }

    /// Published-but-unconsumed slots visible right now.
    pub fn queued(&mut self) -> usize {
        self.consumer.len()
    }

    /// Consumption counters so far.
    pub fn stats(&self) -> EndpointStats {
        EndpointStats {
            decisions: self.decisions,
            by_tier: self.by_tier,
            exhausted: self.exhausted,
        }
    }

    /// Flushes consumption counter deltas to the `qnlg.serve.*` obs
    /// statics. Idempotent, and deliberately *off* the decision path so
    /// the hot loop never touches shared atomics.
    pub fn flush_obs(&mut self) {
        let now = self.stats();
        SERVE_DECISIONS.add(now.decisions - self.flushed.decisions);
        SERVE_TIER_QUANTUM.add(
            now.by_tier[TIER_QUANTUM as usize] - self.flushed.by_tier[TIER_QUANTUM as usize],
        );
        SERVE_TIER_CLASSICAL.add(
            now.by_tier[TIER_CLASSICAL as usize] - self.flushed.by_tier[TIER_CLASSICAL as usize],
        );
        SERVE_TIER_INDEPENDENT.add(
            now.by_tier[TIER_INDEPENDENT as usize]
                - self.flushed.by_tier[TIER_INDEPENDENT as usize],
        );
        SERVE_EXHAUSTED.add(now.exhausted - self.flushed.exhausted);
        self.flushed = now;
    }
}
