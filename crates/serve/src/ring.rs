//! Lock-free single-producer single-consumer ring for decision hand-off.
//!
//! The service's hot path is `pop` on the consumer side of one of these
//! rings; the background distributor thread is the producer. Everything
//! about the layout serves that asymmetry:
//!
//! - **Power-of-two capacity**, so slot lookup is one `&` with a mask and
//!   the head/tail counters can be free-running `u64`s that never wrap in
//!   practice (2⁶⁴ decisions is ~100k years at 5 M/s).
//! - **Cache-line-padded head and tail** (`#[repr(align(64))]`), so the
//!   producer publishing `tail` never invalidates the line the consumer
//!   spins on for `head`, and vice versa.
//! - **Batched publish**: the producer stages a whole refill batch with
//!   plain stores and makes it visible with a *single* release store of
//!   `tail`. The consumer acquires `tail` once per empty check, not per
//!   slot. One fence per batch instead of one per element is where the
//!   hand-off beats a mutex by an order of magnitude.
//! - **Position caching**: each side keeps a local copy of the *other*
//!   side's index and only re-reads the shared atomic when the cached
//!   value says the ring looks full/empty. In steady state a `pop` touches
//!   one shared cache line (the slot) and its own head counter.
//!
//! Elements must be `Copy`: a slot hand-off is a plain load/store, there
//! is nothing to drop, and a ring never owns heap memory beyond its own
//! preallocated slab — which is what makes the decision path provably
//! allocation-free (see `tests/alloc.rs`).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A `u64` alone on its cache line, so producer- and consumer-owned
/// counters never false-share.
#[repr(align(64))]
struct PaddedAtomicU64(AtomicU64);

struct Shared<T> {
    /// Slot storage; length is a power of two.
    buf: Box<[UnsafeCell<T>]>,
    /// `capacity - 1`, for index masking.
    mask: u64,
    /// Next slot to consume. Written by the consumer, read by the
    /// producer (to compute free space).
    head: PaddedAtomicU64,
    /// One past the last published slot. Written by the producer (release,
    /// once per batch), read by the consumer (acquire).
    tail: PaddedAtomicU64,
}

// The ring hands `T` by value between exactly two threads; interior
// mutability is disciplined by the head/tail protocol (a slot is written
// only while unpublished, read only after the release-store of `tail`).
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// Producer half of a ring: staged writes plus batched publish.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Published tail (mirror of `shared.tail`; this side owns it).
    tail: u64,
    /// Slots written past `tail` but not yet published.
    staged: u64,
    /// Last observed consumer head; refreshed only when the ring looks
    /// full.
    head_cache: u64,
}

/// Consumer half of a ring: the hot-path `pop`.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consume position (mirror of `shared.head`; this side owns it).
    head: u64,
    /// Last observed published tail; refreshed only when the ring looks
    /// empty.
    tail_cache: u64,
}

/// Creates a ring of the given power-of-two capacity and splits it into
/// its two single-owner halves.
///
/// # Panics
/// Panics if `capacity` is zero or not a power of two.
pub fn spsc<T: Copy + Default>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    assert!(
        capacity.is_power_of_two(),
        "ring capacity must be a power of two, got {capacity}"
    );
    let buf: Box<[UnsafeCell<T>]> = (0..capacity).map(|_| UnsafeCell::new(T::default())).collect();
    let shared = Arc::new(Shared {
        buf,
        mask: capacity as u64 - 1,
        head: PaddedAtomicU64(AtomicU64::new(0)),
        tail: PaddedAtomicU64(AtomicU64::new(0)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            staged: 0,
            head_cache: 0,
        },
        Consumer {
            shared,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl<T: Copy> Producer<T> {
    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        self.shared.buf.len()
    }

    /// Free slots available for staging, refreshing the cached consumer
    /// position only when the cached view says the ring is full.
    pub fn free(&mut self) -> usize {
        let used = self.tail + self.staged - self.head_cache;
        if used as usize >= self.capacity() {
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
        }
        self.capacity() - (self.tail + self.staged - self.head_cache) as usize
    }

    /// Slots currently occupied (published or staged), with a *fresh*
    /// read of the consumer position. `free`'s lazy cache only refreshes
    /// on apparent-full, which is right for `stage` but would let a
    /// low-water check stall forever on a partially-filled ring the
    /// consumer has been draining; the refill pump is off the hot path,
    /// so it pays for an acquire load every call. (The consumer may
    /// drain concurrently, so the result is still an upper bound by the
    /// time the caller acts on it — the safe direction for refill.)
    pub fn occupied(&mut self) -> usize {
        self.head_cache = self.shared.head.0.load(Ordering::Acquire);
        (self.tail + self.staged - self.head_cache) as usize
    }

    /// Stages one slot without publishing it. Returns `false` (and stages
    /// nothing) when the ring is full.
    #[inline]
    pub fn stage(&mut self, value: T) -> bool {
        if self.free() == 0 {
            return false;
        }
        let idx = ((self.tail + self.staged) & self.shared.mask) as usize;
        // The slot is past the published tail and before the consumer's
        // head, so this side holds exclusive access.
        unsafe { *self.shared.buf[idx].get() = value };
        self.staged += 1;
        true
    }

    /// Publishes every staged slot with one release store. A no-op when
    /// nothing is staged.
    #[inline]
    pub fn publish(&mut self) {
        if self.staged == 0 {
            return;
        }
        self.tail += self.staged;
        self.staged = 0;
        self.shared.tail.0.store(self.tail, Ordering::Release);
    }

    /// Stage-and-publish in one call, for unbatched use.
    #[inline]
    pub fn push(&mut self, value: T) -> bool {
        if !self.stage(value) {
            return false;
        }
        self.publish();
        true
    }
}

impl<T: Copy> Consumer<T> {
    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        self.shared.buf.len()
    }

    /// Published-but-unconsumed slots, from the consumer's view (the
    /// producer may concurrently publish more, so this is a lower bound).
    pub fn len(&mut self) -> usize {
        if self.tail_cache == self.head {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
        }
        (self.tail_cache - self.head) as usize
    }

    /// True when no published slot is visible.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Pops the oldest published slot, or `None` when the ring is empty.
    ///
    /// The hot path: one load of the cached tail (re-read via acquire
    /// only on apparent emptiness), one slot load, one release store of
    /// the consumer head.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.tail_cache == self.head {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
            if self.tail_cache == self.head {
                return None;
            }
        }
        let idx = (self.head & self.shared.mask) as usize;
        // The slot is published (head < tail) and the producer will not
        // reuse it until `head` advances past it.
        let value = unsafe { *self.shared.buf[idx].get() };
        self.head += 1;
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_and_across_batches() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        for v in 0..5 {
            assert!(tx.stage(v));
        }
        // Nothing visible until publish.
        assert_eq!(rx.pop(), None);
        tx.publish();
        for v in 0..5 {
            assert_eq!(rx.pop(), Some(v));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        for v in 0..4 {
            assert!(tx.push(v));
        }
        assert!(!tx.push(99), "full ring must reject");
        assert_eq!(rx.pop(), Some(0));
        assert!(tx.push(4), "freed slot must be reusable");
        for expect in [1, 2, 3, 4] {
            assert_eq!(rx.pop(), Some(expect));
        }
    }

    #[test]
    fn capacity_one_alternates() {
        let (mut tx, mut rx) = spsc::<u8>(1);
        for round in 0..10u8 {
            assert!(tx.push(round));
            assert!(!tx.push(round), "capacity-1 ring holds one slot");
            assert_eq!(rx.pop(), Some(round));
            assert_eq!(rx.pop(), None);
        }
    }

    #[test]
    fn wraparound_preserves_values() {
        let (mut tx, mut rx) = spsc::<u64>(4);
        // Push/pop far past the capacity so indices wrap many times.
        for v in 0..1000u64 {
            assert!(tx.push(v));
            assert_eq!(rx.pop(), Some(v));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = spsc::<u8>(3);
    }

    #[test]
    fn cross_thread_batched_handoff_delivers_everything_in_order() {
        let (mut tx, mut rx) = spsc::<u64>(256);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                // Irregular batch sizes exercise partial publishes.
                let batch = 1 + (next % 37);
                let mut staged = 0;
                while staged < batch && next < N {
                    if tx.stage(next) {
                        next += 1;
                        staged += 1;
                    } else {
                        break;
                    }
                }
                tx.publish();
                if staged == 0 {
                    std::thread::yield_now();
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expect, "out-of-order delivery");
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None, "no phantom slots after the drain");
    }
}
