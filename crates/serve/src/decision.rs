//! Pre-drawn decision slots: the payload the refill thread stages into
//! the SPSC rings and the hot path consumes.
//!
//! The awkward fact a pre-drawn design must absorb is that a CHSH
//! measurement *depends on the query inputs* `(x, y)` — the placement
//! bits come from measuring at input-indexed angles, so a slot drawn
//! before the query arrives cannot know which angles to use. The fix is
//! to pre-sample **all four input combinations** from the same consumed
//! pair: a [`DecisionSlot`] carries one `(s0, s1)` candidate draw plus a
//! 4-entry outcome table indexed by `(x, y)`, and answering a query is a
//! table lookup plus two conditional moves. (Physically this is the
//! simulator's shortcut, not a protocol change: each table entry is an
//! exact sample of the joint outcome distribution *at those angles*, and
//! exactly one entry is ever consumed per pair, so no-signaling is
//! respected — the discarded entries are counterfactuals.)
//!
//! ## Determinism
//!
//! Every slot is a pure function of `(master seed, endpoint, sequence)`:
//! the endpoint's stream seed derives per-slot [`SplitMix64`] sub-streams
//! via the workspace-wide [`runtime::stream_seed`] discipline, and the
//! slot's *simulated* consumption time is `(seq + 1) ·
//! decision_period` — a function of the sequence number, never of the
//! wall clock. Refill timing, thread count, and ring occupancy therefore
//! cannot change a single drawn bit, which is what lets a soak run's
//! canonical artifact stay byte-identical across `QNLG_THREADS`.

use loadbalance::degrade::CoordinationMode;
use qsim::werner::WernerPair;
use runtime::{stream_seed, SplitMix64};

/// Decision tier a slot was drawn under, stored as one byte in the slot.
/// Mirrors [`CoordinationMode`] (same ordering as its gauge values).
pub const TIER_QUANTUM: u8 = 0;
/// Slot drawn under classical-shared fallback (governor tripped, or a
/// quantum-mode round that missed — no buffered pair).
pub const TIER_CLASSICAL: u8 = 1;
/// Slot drawn under the deep-fault independent tier.
pub const TIER_INDEPENDENT: u8 = 2;

/// Converts a stored tier byte back to the governor's mode enum.
pub fn tier_mode(tier: u8) -> CoordinationMode {
    match tier {
        TIER_QUANTUM => CoordinationMode::Quantum,
        TIER_CLASSICAL => CoordinationMode::ClassicalShared,
        _ => CoordinationMode::IndependentRandom,
    }
}

/// One pre-drawn placement decision, ready for any `(x, y)` input pair.
///
/// `Copy` and 24 bytes, so a ring slot hand-off is a couple of plain
/// stores and the hot path never touches the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionSlot {
    /// Position in the endpoint's decision stream (also determines the
    /// slot's simulated consumption time).
    pub seq: u64,
    /// First candidate server.
    pub s0: u32,
    /// Second candidate server (distinct from `s0` except in the
    /// independent tier, where both are unconstrained draws).
    pub s1: u32,
    /// Flipped-CHSH outcome bits per input combination, indexed
    /// `(x << 1) | y`: bit 0 is Alice's placement bit `a` (true → `s1`),
    /// bit 1 is Bob's placement bit `b` (true → `s1`).
    pub outcomes: [u8; 4],
    /// [`TIER_QUANTUM`] / [`TIER_CLASSICAL`] / [`TIER_INDEPENDENT`].
    pub tier: u8,
}

/// A resolved placement for one query: where the two tasks go, and which
/// tier produced the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Server for the first task.
    pub first: u32,
    /// Server for the second task.
    pub second: u32,
    /// Tier byte of the slot that answered.
    pub tier: u8,
    /// Sequence number of the slot that answered (`u64::MAX` for an
    /// exhausted-ring inline fallback).
    pub seq: u64,
}

impl DecisionSlot {
    /// Resolves the slot against query inputs `(x, y)` (`true` = type-C
    /// task). Pure table lookup + two conditional selects — the entire
    /// hot-path compute.
    #[inline]
    pub fn place(&self, x: bool, y: bool) -> Placement {
        let bits = self.outcomes[((x as usize) << 1) | (y as usize)];
        Placement {
            first: if bits & 1 != 0 { self.s1 } else { self.s0 },
            second: if bits & 2 != 0 { self.s1 } else { self.s0 },
            tier: self.tier,
            seq: self.seq,
        }
    }
}

/// The slot sub-stream for `(endpoint stream seed, seq)`. Index 0 of the
/// endpoint family is reserved for the exhausted-ring fallback stream,
/// so slot `seq` draws from index `seq + 1`.
#[inline]
pub fn slot_rng(endpoint_seed: u64, seq: u64) -> SplitMix64 {
    SplitMix64::new(stream_seed(endpoint_seed, seq.wrapping_add(1)))
}

/// The endpoint's dedicated stream for inline classical fallbacks when
/// its ring is exhausted (index 0 of the endpoint family; see
/// [`slot_rng`]).
#[inline]
pub fn fallback_rng(endpoint_seed: u64) -> SplitMix64 {
    SplitMix64::new(stream_seed(endpoint_seed, 0))
}

/// Draws the distinct candidate pair `(s0, s1)` — the same
/// uniform-then-bump rule as `loadbalance::pipeline`.
#[inline]
fn draw_candidates(n_servers: u32, rng: &mut SplitMix64) -> (u32, u32) {
    let s0 = rng.gen_range(n_servers);
    let mut s1 = rng.gen_range(n_servers - 1);
    if s1 >= s0 {
        s1 += 1;
    }
    (s0, s1)
}

/// Samples the flipped-CHSH outcome bits for one input combination from
/// the pair's exact joint CDF (`(1+E)/4, 1/2, (3−E)/4, 1` — the same
/// walk as [`WernerPair::sample`], driven by a [`SplitMix64`] draw).
#[inline]
fn sample_outcome(pair: &WernerPair, theta_a: f64, theta_b: f64, rng: &mut SplitMix64) -> u8 {
    let e = pair.correlation(theta_a, theta_b);
    let u = rng.next_f64();
    let (a, b) = if u < 0.25 * (1.0 + e) {
        (0u8, 0u8)
    } else if u < 0.5 {
        (0, 1)
    } else if u < 0.5 + 0.25 * (1.0 - e) {
        (1, 0)
    } else {
        (1, 1)
    };
    // Flipped game (§4.1): Alice's placement bit is a == 1, Bob's is
    // b == 0 — same mapping as loadbalance::pipeline::coordinate.
    (a == 1) as u8 | (((b == 0) as u8) << 1)
}

/// Draws a quantum-tier slot from a consumed pair: one candidate draw
/// plus one exact joint sample per input combination (6 RNG draws
/// total, all from the slot's own sub-stream).
pub fn draw_quantum(seq: u64, n_servers: u32, pair: &WernerPair, rng: &mut SplitMix64) -> DecisionSlot {
    let (s0, s1) = draw_candidates(n_servers, rng);
    let mut outcomes = [0u8; 4];
    for x in 0..2usize {
        for y in 0..2usize {
            outcomes[(x << 1) | y] = sample_outcome(
                pair,
                games::chsh::alice_angle(x),
                games::chsh::bob_angle(y),
                rng,
            );
        }
    }
    DecisionSlot {
        seq,
        s0,
        s1,
        outcomes,
        tier: TIER_QUANTUM,
    }
}

/// Outcome bits of the classical always-split rule: `(a, b) = (false,
/// true)` for every input, i.e. first task → `s0`, second → `s1`.
pub const CLASSICAL_OUTCOMES: [u8; 4] = [0b10; 4];

/// Draws a classical-shared slot: distinct candidates split
/// unconditionally (win rate 0.75, the best classical pairing).
pub fn draw_classical_shared(seq: u64, n_servers: u32, rng: &mut SplitMix64) -> DecisionSlot {
    let (s0, s1) = draw_candidates(n_servers, rng);
    DecisionSlot {
        seq,
        s0,
        s1,
        outcomes: CLASSICAL_OUTCOMES,
        tier: TIER_CLASSICAL,
    }
}

/// Draws a deep-fault independent slot: two unconstrained uniform
/// draws, no shared structure at all.
pub fn draw_independent(seq: u64, n_servers: u32, rng: &mut SplitMix64) -> DecisionSlot {
    let s0 = rng.gen_range(n_servers);
    let s1 = rng.gen_range(n_servers);
    DecisionSlot {
        seq,
        s0,
        s1,
        outcomes: CLASSICAL_OUTCOMES,
        tier: TIER_INDEPENDENT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_is_small_and_copy() {
        // The ring hand-off budget: a slot must stay well inside a cache
        // line.
        assert!(std::mem::size_of::<DecisionSlot>() <= 32);
    }

    #[test]
    fn placement_selects_by_outcome_bits() {
        let slot = DecisionSlot {
            seq: 7,
            s0: 3,
            s1: 9,
            outcomes: [0b00, 0b01, 0b10, 0b11],
            tier: TIER_QUANTUM,
        };
        let p = slot.place(false, false);
        assert_eq!((p.first, p.second), (3, 3));
        let p = slot.place(false, true);
        assert_eq!((p.first, p.second), (9, 3));
        let p = slot.place(true, false);
        assert_eq!((p.first, p.second), (3, 9));
        let p = slot.place(true, true);
        assert_eq!((p.first, p.second), (9, 9));
        assert_eq!(p.seq, 7);
    }

    #[test]
    fn slots_are_pure_functions_of_their_coordinates() {
        let pair = WernerPair::new(0.95).unwrap();
        let endpoint_seed = stream_seed(0xFEED, 2);
        for seq in [0u64, 1, 17, 1000] {
            let a = draw_quantum(seq, 64, &pair, &mut slot_rng(endpoint_seed, seq));
            let b = draw_quantum(seq, 64, &pair, &mut slot_rng(endpoint_seed, seq));
            assert_eq!(a, b);
        }
        // Distinct sequence numbers draw from decorrelated sub-streams.
        let a = draw_quantum(0, 64, &pair, &mut slot_rng(endpoint_seed, 0));
        let b = draw_quantum(1, 64, &pair, &mut slot_rng(endpoint_seed, 1));
        assert!(a.s0 != b.s0 || a.s1 != b.s1 || a.outcomes != b.outcomes);
    }

    #[test]
    fn candidates_are_distinct_and_in_range() {
        let mut rng = SplitMix64::new(42);
        for seq in 0..500 {
            let slot = draw_classical_shared(seq, 10, &mut rng);
            assert!(slot.s0 < 10 && slot.s1 < 10);
            assert_ne!(slot.s0, slot.s1, "shared-draw candidates must differ");
        }
    }

    #[test]
    fn classical_slot_always_splits() {
        let mut rng = SplitMix64::new(7);
        let slot = draw_classical_shared(0, 16, &mut rng);
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let p = slot.place(x, y);
            assert_eq!(p.first, slot.s0);
            assert_eq!(p.second, slot.s1);
            assert_ne!(p.first, p.second);
        }
    }

    #[test]
    fn quantum_outcomes_match_the_werner_joint_distribution() {
        // Aggregate the pre-drawn (1,1) table entries over many slots.
        // Standard CHSH at x = y = 1 wants a ⊕ b = 1 and achieves it
        // w.p. cos²(π/8); flipping Bob's bit converts that into the two
        // placement bits *matching* (co-location), so P(first pick ==
        // second pick) at (1,1) ≈ cos²(π/8) for an ideal pair.
        let pair = WernerPair::ideal();
        let endpoint_seed = stream_seed(99, 0);
        let n = 40_000u64;
        let mut matches = 0u64;
        for seq in 0..n {
            let slot = draw_quantum(seq, 8, &pair, &mut slot_rng(endpoint_seed, seq));
            let bits = slot.outcomes[0b11];
            if (bits & 1 != 0) == (bits & 2 != 0) {
                matches += 1;
            }
        }
        let rate = matches as f64 / n as f64;
        let expected = (std::f64::consts::FRAC_PI_8).cos().powi(2);
        assert!(
            (rate - expected).abs() < 0.01,
            "co-location rate at (1,1): {rate} vs cos²(π/8) = {expected}"
        );
    }

    #[test]
    fn fallback_stream_is_disjoint_from_slot_streams() {
        let endpoint_seed = stream_seed(5, 3);
        let fb = fallback_rng(endpoint_seed).raw();
        for seq in 0..64 {
            assert_ne!(fb, slot_rng(endpoint_seed, seq).raw());
        }
    }
}
