//! Obs hooks for *wall-clock* measurement of the served hot path.
//!
//! Everything in `endpoint`/`service` is deterministic and never reads a
//! clock; wall-clock numbers come from measurement harnesses (the E11
//! experiment, `benches/serve.rs`) that time their own loops and report
//! here. Keeping the metric names in one place ties the `perf` schema
//! fields to their definitions:
//!
//! - `qnlg.serve.hot.decisions` / `qnlg.serve.hot.ns` — decisions served
//!   and nanoseconds spent inside *measured drain windows only* (ring
//!   pre-filled, timer around the decide loop). Their quotient is the
//!   artifact's `decisions_per_sec`: hot-path busy-time throughput, not
//!   diluted by refills or open-loop pacing.
//! - `qnlg.serve.decision_latency_ns` — per-decision latency samples
//!   (one `Instant` pair around a single `decide`). Percentile estimates
//!   are log-bucket upper bounds (`2^k − 1` ns), so a reported p99 of
//!   511 means "the 99th-percentile decision took at most 511 ns".
//!
//! All hooks are no-ops while obs collection is disabled, so calling
//! them cannot perturb determinism arms.

use obs::{LazyCounter, LazyHist};

/// Decisions served inside measured hot windows.
static HOT_DECISIONS: LazyCounter = LazyCounter::new("qnlg.serve.hot.decisions");
/// Wall-clock nanoseconds spent inside measured hot windows.
static HOT_NS: LazyCounter = LazyCounter::new("qnlg.serve.hot.ns");
/// Per-decision latency samples, in nanoseconds.
static DECISION_LATENCY: LazyHist = LazyHist::new("qnlg.serve.decision_latency_ns");

/// Records one measured drain window: `decisions` answered in
/// `elapsed_ns` of wall clock.
pub fn record_hot_window(decisions: u64, elapsed_ns: u64) {
    HOT_DECISIONS.add(decisions);
    HOT_NS.add(elapsed_ns);
}

/// Records one per-decision latency sample.
#[inline]
pub fn record_decision_latency(ns: u64) {
    DECISION_LATENCY.record(ns);
}
