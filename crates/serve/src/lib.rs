//! `qnlg-serve`: the long-lived coordination service.
//!
//! Everything else in this workspace measures the paper's claims inside
//! closed `repro` loops. This crate is the operational shape those
//! claims ask for (ROADMAP item 5, and the backend/operator split of the
//! qflow line of work): a daemon that owns the entanglement plane —
//! [`qnet::EntanglementDistributor`] lanes fed by a background refill
//! thread — and answers task-placement queries on a decision path that
//! is **allocation-free and sub-microsecond at p99**.
//!
//! The architecture is three layers, one module each:
//!
//! - [`ring`]: lock-free SPSC rings (cache-line-padded indices,
//!   power-of-two capacity, batched publish) carry pre-drawn decisions
//!   from the plane to each endpoint.
//! - [`decision`]: the pre-drawn [`decision::DecisionSlot`] — one
//!   candidate-server draw plus flipped-CHSH outcome bits for all four
//!   input combinations, each slot a pure function of `(master seed,
//!   endpoint, sequence)` so artifacts are byte-identical across thread
//!   counts.
//! - [`endpoint`] / [`service`]: the producer/consumer lane halves and
//!   the service bundles — single-threaded [`ServiceCore`] (the
//!   measurement-grade in-process path) and threaded [`Service`] with
//!   graceful, exactly-once-flushing shutdown. A drained ring never
//!   blocks a decision: the endpoint degrades inline to the
//!   classical-shared tier, and the live [`FallbackGovernor`] in each
//!   feed moves the *produced* slots between tiers as plane health
//!   changes.
//!
//! [`socket`] adds a length-prefixed Unix-socket protocol (`repro serve
//! --soak --socket <path>`) for out-of-process callers.
//!
//! [`FallbackGovernor`]: loadbalance::degrade::FallbackGovernor

pub mod decision;
pub mod endpoint;
pub mod measure;
pub mod ring;
pub mod service;
pub mod socket;

pub use decision::{DecisionSlot, Placement, TIER_CLASSICAL, TIER_INDEPENDENT, TIER_QUANTUM};
pub use endpoint::{DecisionEndpoint, EndpointFeed, EndpointStats, FeedStats};
pub use service::{ServeConfig, Service, ServiceCore, ServiceSummary};
