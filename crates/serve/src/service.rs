//! The service itself: configuration, the single-threaded
//! [`ServiceCore`] (measurement-grade: the sub-µs in-process path), and
//! the threaded [`Service`] with a background refill thread and graceful
//! shutdown.
//!
//! `ServiceCore` bundles every lane's feed and endpoint behind one `&mut
//! self`; the caller interleaves `pump_all` (refill) and `decide` (hot
//! path) however it likes. That is the configuration the acceptance
//! numbers are quoted for — on a single core, a separate refill thread
//! would *compete* with the decision path rather than hide behind it.
//! `Service` splits the same lanes across threads: one pump thread owns
//! every [`EndpointFeed`], callers reach endpoints through per-endpoint
//! mutexes (uncontended unless two callers share an endpoint, which the
//! socket server never does by construction).
//!
//! Shutdown is idempotent and exactly-once: the pump thread is joined,
//! every in-flight ring slot stays consumable (pre-drawn slots are
//! *state*, not liabilities — a drained service answers from its buffers
//! until they run dry), and obs counter deltas are flushed exactly once
//! no matter how many of `shutdown` / `Drop` run.

use crate::decision::Placement;
use crate::endpoint::{DecisionEndpoint, EndpointFeed, EndpointStats, FeedStats};
use crate::ring;
use loadbalance::degrade::HysteresisConfig;
use qnet::DistributorConfig;
use runtime::stream_seed;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of a coordination service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Servers the placement decisions choose among.
    pub n_servers: u32,
    /// Decision endpoints (one ring + distributor lane each).
    pub n_endpoints: u32,
    /// Ring capacity per endpoint (power of two).
    pub ring_capacity: usize,
    /// Refill when ring occupancy drops to this or below.
    pub low_water: usize,
    /// Slots drawn per refill batch.
    pub refill_batch: usize,
    /// Simulated time between consecutive decisions on one endpoint
    /// (slot `seq` is consumed at sim time `(seq+1) · period`).
    pub decision_period: Duration,
    /// The entanglement plane backing each lane.
    pub distributor: DistributorConfig,
    /// Fallback governor thresholds.
    pub hysteresis: HysteresisConfig,
    /// Master seed; all endpoint streams derive from it.
    pub master_seed: u64,
}

impl ServeConfig {
    /// A representative healthy service: 4 endpoints × 64 servers over
    /// the typical room-temperature plane, decisions every 20 µs of sim
    /// time (half the delivered-pair rate, so the quantum tier holds).
    pub fn typical(master_seed: u64) -> Self {
        ServeConfig {
            n_servers: 64,
            n_endpoints: 4,
            ring_capacity: 4096,
            low_water: 1024,
            refill_batch: 2048,
            decision_period: Duration::from_micros(20),
            distributor: DistributorConfig::typical(),
            hysteresis: HysteresisConfig::default(),
            master_seed,
        }
    }
}

/// Aggregate counters for a whole service run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Summed endpoint (consumer) counters.
    pub endpoints: EndpointStats,
    /// Summed feed (producer) counters.
    pub feeds: FeedStats,
}

fn sum_stats(
    endpoints: impl Iterator<Item = EndpointStats>,
    feeds: impl Iterator<Item = FeedStats>,
) -> ServiceSummary {
    let mut out = ServiceSummary::default();
    for s in endpoints {
        out.endpoints.decisions += s.decisions;
        out.endpoints.exhausted += s.exhausted;
        for t in 0..3 {
            out.endpoints.by_tier[t] += s.by_tier[t];
        }
    }
    for f in feeds {
        out.feeds.produced += f.produced;
        out.feeds.refills += f.refills;
        out.feeds.misses += f.misses;
        out.feeds.transitions += f.transitions;
    }
    out
}

/// Builds the per-endpoint lanes for a config: `(feeds, endpoints)`.
///
/// Endpoint `e` uses stream family `stream_seed(master, 2e)` for its
/// slot/fallback streams and family `2e + 1` for the distributor's
/// internal randomness, so slot draws and plane noise never share a
/// stream.
fn build_lanes(config: &ServeConfig) -> (Vec<EndpointFeed>, Vec<DecisionEndpoint>) {
    assert!(config.n_endpoints > 0, "need at least one endpoint");
    let mut feeds = Vec::with_capacity(config.n_endpoints as usize);
    let mut endpoints = Vec::with_capacity(config.n_endpoints as usize);
    for e in 0..config.n_endpoints {
        let endpoint_seed = stream_seed(config.master_seed, 2 * u64::from(e));
        let mut dist_rng = runtime::stream_rng(config.master_seed, 2 * u64::from(e) + 1);
        let (producer, consumer) = ring::spsc(config.ring_capacity);
        feeds.push(EndpointFeed::new(
            e,
            producer,
            config.distributor.clone(),
            config.hysteresis,
            endpoint_seed,
            config.decision_period.as_nanos() as u64,
            config.n_servers,
            config.low_water,
            config.refill_batch,
            &mut dist_rng,
        ));
        endpoints.push(DecisionEndpoint::new(
            e,
            consumer,
            endpoint_seed,
            config.n_servers,
        ));
    }
    (feeds, endpoints)
}

/// Single-threaded service: every lane behind one `&mut self`, refill
/// interleaved by the caller. The measurement-grade configuration.
pub struct ServiceCore {
    feeds: Vec<EndpointFeed>,
    endpoints: Vec<DecisionEndpoint>,
    flushed: bool,
}

impl ServiceCore {
    /// Builds all lanes (no slots drawn yet; call [`Self::pump_all`] or
    /// [`Self::fill_all`] to pre-fill).
    pub fn new(config: &ServeConfig) -> Self {
        let (feeds, endpoints) = build_lanes(config);
        ServiceCore {
            feeds,
            endpoints,
            flushed: false,
        }
    }

    /// Number of endpoints.
    pub fn n_endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// One refill pass over every lane; returns total slots published.
    pub fn pump_all(&mut self) -> usize {
        self.feeds.iter_mut().map(|f| f.pump()).sum()
    }

    /// Fills every ring to capacity (ignoring low-water marks); returns
    /// total slots published.
    pub fn fill_all(&mut self) -> usize {
        self.feeds
            .iter_mut()
            .map(|f| f.fill(usize::MAX))
            .sum()
    }

    /// Answers one placement query on `endpoint`.
    #[inline]
    pub fn decide(&mut self, endpoint: usize, x: bool, y: bool) -> Placement {
        self.endpoints[endpoint].decide(x, y)
    }

    /// Mutable access to one endpoint (bench harnesses time the
    /// endpoint's `decide` directly to keep the indexing off the
    /// measured path).
    pub fn endpoint_mut(&mut self, endpoint: usize) -> &mut DecisionEndpoint {
        &mut self.endpoints[endpoint]
    }

    /// Mutable access to one feed.
    pub fn feed_mut(&mut self, endpoint: usize) -> &mut EndpointFeed {
        &mut self.feeds[endpoint]
    }

    /// Aggregate counters.
    pub fn summary(&self) -> ServiceSummary {
        sum_stats(
            self.endpoints.iter().map(|e| e.stats()),
            self.feeds.iter().map(|f| f.stats()),
        )
    }

    /// Flushes all counter deltas to obs. Safe to call repeatedly;
    /// [`Self::finish`] guarantees it ran at least once.
    pub fn flush_obs(&mut self) {
        for e in &mut self.endpoints {
            e.flush_obs();
        }
        for f in &mut self.feeds {
            f.flush_obs();
        }
        self.flushed = true;
    }

    /// Graceful end-of-run: final flush (exactly once if the caller
    /// never flushed manually) and the closing summary.
    pub fn finish(mut self) -> ServiceSummary {
        self.flush_obs();
        self.summary()
    }
}

impl Drop for ServiceCore {
    fn drop(&mut self) {
        if !self.flushed {
            self.flush_obs();
        }
    }
}

/// Shared state between the pump thread and decision callers.
struct ServiceShared {
    endpoints: Vec<Mutex<DecisionEndpoint>>,
    stop: AtomicBool,
}

/// Threaded service: a background thread owns every feed and keeps the
/// rings topped up; callers decide through per-endpoint mutexes.
pub struct Service {
    shared: Arc<ServiceShared>,
    pump: Option<std::thread::JoinHandle<Vec<EndpointFeed>>>,
    summary: Option<ServiceSummary>,
}

impl Service {
    /// Builds the lanes, pre-fills every ring synchronously (so the
    /// first decision after `start` never races the pump thread), then
    /// starts the refill thread.
    pub fn start(config: &ServeConfig) -> Self {
        let (mut feeds, endpoints) = build_lanes(config);
        for f in &mut feeds {
            f.fill(usize::MAX);
        }
        let shared = Arc::new(ServiceShared {
            endpoints: endpoints.into_iter().map(Mutex::new).collect(),
            stop: AtomicBool::new(false),
        });
        let pump_shared = Arc::clone(&shared);
        let pump = std::thread::Builder::new()
            .name("qnlg-serve-pump".into())
            .spawn(move || {
                while !pump_shared.stop.load(Ordering::Acquire) {
                    let mut published = 0;
                    for f in &mut feeds {
                        published += f.pump();
                    }
                    if published == 0 {
                        // Rings are healthy; yield the core instead of
                        // spinning against the decision threads.
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
                feeds
            })
            .expect("spawn pump thread");
        Service {
            shared,
            pump: Some(pump),
            summary: None,
        }
    }

    /// Number of endpoints.
    pub fn n_endpoints(&self) -> usize {
        self.shared.endpoints.len()
    }

    /// Answers one placement query on `endpoint`. Locks that endpoint's
    /// mutex (uncontended when each caller owns its endpoint).
    pub fn decide(&self, endpoint: usize, x: bool, y: bool) -> Placement {
        self.shared.endpoints[endpoint]
            .lock()
            .expect("endpoint lock")
            .decide(x, y)
    }

    /// Graceful shutdown: stops and joins the pump thread, flushes every
    /// counter delta to obs exactly once, and returns the aggregate
    /// summary. Idempotent — later calls (including the implicit one in
    /// `Drop`) return the same summary without re-flushing.
    pub fn shutdown(&mut self) -> ServiceSummary {
        if let Some(summary) = self.summary {
            return summary;
        }
        self.shared.stop.store(true, Ordering::Release);
        let mut feeds = match self.pump.take() {
            Some(handle) => handle.join().expect("pump thread panicked"),
            None => Vec::new(),
        };
        for f in &mut feeds {
            f.flush_obs();
        }
        let mut endpoint_stats = Vec::with_capacity(self.shared.endpoints.len());
        for slot in &self.shared.endpoints {
            let mut e = slot.lock().expect("endpoint lock");
            e.flush_obs();
            endpoint_stats.push(e.stats());
        }
        let summary = sum_stats(endpoint_stats.into_iter(), feeds.iter().map(|f| f.stats()));
        self.summary = Some(summary);
        summary
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::TIER_QUANTUM;

    fn small_config(seed: u64) -> ServeConfig {
        ServeConfig {
            n_servers: 16,
            n_endpoints: 2,
            ring_capacity: 256,
            low_water: 64,
            refill_batch: 128,
            ..ServeConfig::typical(seed)
        }
    }

    #[test]
    fn core_answers_quantum_after_prefill() {
        let mut core = ServiceCore::new(&small_config(7));
        let filled = core.fill_all();
        assert_eq!(filled, 2 * 256);
        let p = core.decide(0, true, true);
        assert!(p.first < 16 && p.second < 16);
        assert_eq!(p.tier, TIER_QUANTUM, "healthy plane should serve quantum");
        let s = core.finish();
        assert_eq!(s.endpoints.decisions, 1);
        assert_eq!(s.feeds.produced, 512);
    }

    #[test]
    fn exhausted_core_degrades_inline_without_blocking() {
        let mut core = ServiceCore::new(&small_config(8));
        // No fill: every decision hits an empty ring.
        for _ in 0..100 {
            let p = core.decide(1, false, true);
            assert!(p.first < 16 && p.second < 16);
            assert_ne!(p.first, p.second, "inline fallback always splits");
            assert_eq!(p.seq, u64::MAX);
        }
        let s = core.summary();
        assert_eq!(s.endpoints.exhausted, 100);
    }

    #[test]
    fn pump_respects_low_water_and_refills_after_drain() {
        let mut core = ServiceCore::new(&small_config(9));
        core.fill_all();
        assert_eq!(core.pump_all(), 0, "full rings must not refill");
        // Drain endpoint 0 below the low-water mark.
        for _ in 0..200 {
            core.decide(0, false, false);
        }
        let published = core.pump_all();
        assert!(published > 0, "drained ring must refill");
    }

    #[test]
    fn same_seed_cores_agree_slot_for_slot() {
        let mut a = ServiceCore::new(&small_config(42));
        let mut b = ServiceCore::new(&small_config(42));
        a.fill_all();
        b.fill_all();
        for i in 0..256 {
            let (x, y) = (i % 2 == 0, i % 3 == 0);
            assert_eq!(a.decide(0, x, y), b.decide(0, x, y));
            assert_eq!(a.decide(1, x, y), b.decide(1, x, y));
        }
    }

    #[test]
    fn threaded_service_serves_and_shuts_down_idempotently() {
        let mut svc = Service::start(&small_config(5));
        let mut decided = 0u64;
        for i in 0..2000 {
            let p = svc.decide(i % 2, i % 3 == 0, i % 5 == 0);
            assert!(p.first < 16 && p.second < 16);
            decided += 1;
        }
        let s1 = svc.shutdown();
        assert_eq!(s1.endpoints.decisions, decided);
        // In-flight pre-drawn slots are state, not losses: everything
        // consumed was either a produced slot or an inline fallback.
        assert!(s1.feeds.produced + s1.endpoints.exhausted >= decided);
        let s2 = svc.shutdown();
        assert_eq!(s1, s2, "shutdown must be idempotent");
    }

    #[test]
    fn threaded_matches_core_decisions_same_seed() {
        // The pump thread changes *when* slots are drawn, never *what*
        // they contain: decisions must match the single-threaded core.
        let config = small_config(11);
        let mut core = ServiceCore::new(&config);
        core.fill_all();
        let svc = Service::start(&config);
        // Stay within the synchronous prefill (256 slots) so the
        // comparison never depends on pump-thread scheduling.
        for i in 0..200 {
            let (x, y) = (i % 2 == 0, i % 7 == 0);
            let a = core.decide(0, x, y);
            let b = svc.decide(0, x, y);
            assert_eq!(a, b, "decision {i} diverged");
        }
    }
}
