//! Length-prefixed Unix-socket protocol for out-of-process decision
//! queries.
//!
//! The wire format is deliberately tiny and version-free (the socket
//! path is the version boundary):
//!
//! ```text
//! request  := len:u32le  endpoint:u32le  x:u8  y:u8          (len = 6)
//! response := len:u32le  first:u32le  second:u32le
//!             seq:u64le  tier:u8                             (len = 17)
//! ```
//!
//! One connection carries any number of request/response exchanges in
//! order. `x`/`y` are the CHSH inputs (nonzero = type-C task); `tier`
//! and `seq` echo the consumed slot's provenance so a client can audit
//! which coordination tier answered.
//!
//! The server is a thin shell over [`Service`]: an accept loop plus one
//! handler thread per connection, each pinned to the endpoint named in
//! its requests. Shutdown drains gracefully — the accept loop closes
//! first, then each open connection's *read* side is shut down, so a
//! response in flight is still written before the handler exits.

#![cfg(unix)]

use crate::decision::Placement;
use crate::service::Service;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Request payload length.
const REQ_LEN: u32 = 6;
/// Response payload length.
const RESP_LEN: u32 = 17;

fn read_frame(stream: &mut UnixStream, expect_len: u32, buf: &mut [u8]) -> io::Result<bool> {
    let mut len_bytes = [0u8; 4];
    match stream.read_exact(&mut len_bytes) {
        Ok(()) => {}
        // Clean EOF between frames ends the connection.
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len != expect_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}, expected {expect_len}"),
        ));
    }
    stream.read_exact(&mut buf[..len as usize])?;
    Ok(true)
}

fn write_response(stream: &mut UnixStream, p: Placement) -> io::Result<()> {
    let mut frame = [0u8; 4 + RESP_LEN as usize];
    frame[..4].copy_from_slice(&RESP_LEN.to_le_bytes());
    frame[4..8].copy_from_slice(&p.first.to_le_bytes());
    frame[8..12].copy_from_slice(&p.second.to_le_bytes());
    frame[12..20].copy_from_slice(&p.seq.to_le_bytes());
    frame[20] = p.tier;
    stream.write_all(&frame)
}

fn handle_connection(service: &Service, stream: &mut UnixStream) -> io::Result<()> {
    let n_endpoints = service.n_endpoints() as u32;
    let mut payload = [0u8; REQ_LEN as usize];
    while read_frame(stream, REQ_LEN, &mut payload)? {
        let endpoint = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
        if endpoint >= n_endpoints {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("endpoint {endpoint} out of range (< {n_endpoints})"),
            ));
        }
        let p = service.decide(endpoint as usize, payload[4] != 0, payload[5] != 0);
        write_response(stream, p)?;
    }
    Ok(())
}

/// A serving Unix socket bound to a [`Service`].
pub struct SocketServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<UnixStream>>>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl SocketServer {
    /// Binds `path` (replacing any stale socket file) and starts the
    /// accept loop over `service`.
    pub fn start(path: impl AsRef<Path>, service: Arc<Service>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<UnixStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept = std::thread::Builder::new()
            .name("qnlg-serve-accept".into())
            .spawn(move || {
                let mut handlers = Vec::new();
                while !accept_stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            if let Ok(tracked) = stream.try_clone() {
                                accept_conns.lock().expect("conn registry").push(tracked);
                            }
                            let svc = Arc::clone(&service);
                            handlers.push(std::thread::spawn(move || {
                                let mut stream = stream;
                                // A protocol error or client disconnect
                                // ends this connection only. Shut the
                                // socket down explicitly: the tracked
                                // clone in the registry would otherwise
                                // hold it open past the handler's exit.
                                let _ = handle_connection(&svc, &mut stream);
                                let _ = stream.shutdown(std::net::Shutdown::Both);
                            }));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
            })?;
        Ok(SocketServer {
            path,
            stop,
            conns,
            accept: Some(accept),
        })
    }

    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Graceful stop: close the accept loop, shut down the read side of
    /// every open connection (in-flight responses still get written),
    /// join all handler threads, and remove the socket file. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for conn in self.conns.lock().expect("conn registry").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A blocking client for the socket protocol.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a server socket.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }

    /// Sends one placement query and waits for the decision.
    pub fn decide(&mut self, endpoint: u32, x: bool, y: bool) -> io::Result<Placement> {
        let mut frame = [0u8; 4 + REQ_LEN as usize];
        frame[..4].copy_from_slice(&REQ_LEN.to_le_bytes());
        frame[4..8].copy_from_slice(&endpoint.to_le_bytes());
        frame[8] = x as u8;
        frame[9] = y as u8;
        self.stream.write_all(&frame)?;
        let mut payload = [0u8; RESP_LEN as usize];
        if !read_frame(&mut self.stream, RESP_LEN, &mut payload)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            ));
        }
        Ok(Placement {
            first: u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]),
            second: u32::from_le_bytes([payload[4], payload[5], payload[6], payload[7]]),
            seq: u64::from_le_bytes(payload[8..16].try_into().expect("seq bytes")),
            tier: payload[16],
        })
    }
}
