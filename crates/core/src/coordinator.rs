//! The coordination primitives.
//!
//! ## How the referee works (and why it is honest)
//!
//! A real deployment has no referee: physics correlates the measurement
//! outcomes. A simulation needs *something* to hold the joint state; the
//! danger is accidentally letting one endpoint's input leak to the other.
//! The implementation here samples outcomes in arrival order from the
//! exact quantum joint distribution:
//!
//! - The first endpoint of a round gets a **uniform** bit — its marginal
//!   is 50/50 independent of everything (no-signaling), so no information
//!   about the peer is needed or used.
//! - The second endpoint's bit agrees with the first with probability
//!   `(1 + C[x][y])/2`, where `C` is the game's correlation matrix — the
//!   Born-rule conditional.
//!
//! This is exactly the distribution a Bell-pair measurement produces
//! (cross-validated against the full statevector simulation in the test
//! suite), and the API makes leaking impossible: `decide` takes only the
//! caller's own input.

use crate::error::CoreError;
use games::{AffinityGraph, XorGame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Maximum rounds one endpoint may run ahead of its peer before `decide`
/// fails — a guard against unbounded memory when one side stalls.
pub const MAX_ROUND_AHEAD: usize = 4096;

/// The binary task classification of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskClass {
    /// Benefits from co-location (type-C).
    Colocate,
    /// Wants exclusive access (type-E).
    Exclusive,
}

impl TaskClass {
    fn index(self) -> usize {
        match self {
            TaskClass::Colocate => 1,
            TaskClass::Exclusive => 0,
        }
    }
}

/// One coordination round's referee record.
struct Round {
    /// Per-party (input, output-bit), set when that party decides.
    outcome: [Option<(usize, bool)>; 2],
    /// The round's shared candidate servers (lazily drawn).
    servers: Option<(usize, usize)>,
}

struct Inner {
    /// The game's correlation `C[x][y] = E[(−1)^{a⊕b} | x, y]`, with
    /// party A's input first.
    corr: Box<dyn Fn(usize, usize) -> f64 + Send>,
    rng: StdRng,
    rounds: VecDeque<Round>,
    /// Round index of `rounds[0]`.
    base: u64,
    /// Next round index per party.
    cursor: [u64; 2],
}

impl Inner {
    fn decide(&mut self, party: usize, input: usize) -> Result<bool, CoreError> {
        Ok(self.decide_full(party, input, None)?.0)
    }

    /// Decides and, when `n_servers` is given, draws the round's shared
    /// candidate-server pair atomically (before the round can be garbage
    /// collected).
    fn decide_full(
        &mut self,
        party: usize,
        input: usize,
        n_servers: Option<usize>,
    ) -> Result<(bool, Option<(usize, usize)>), CoreError> {
        let other = 1 - party;
        let ahead = self.cursor[party].saturating_sub(self.cursor[other]) as usize;
        if ahead >= MAX_ROUND_AHEAD {
            return Err(CoreError::RoundOverrun { ahead });
        }
        let idx = self.cursor[party];
        self.cursor[party] += 1;
        while self.base + (self.rounds.len() as u64) <= idx {
            self.rounds.push_back(Round {
                outcome: [None, None],
                servers: None,
            });
        }
        let slot = (idx - self.base) as usize;
        let round = &mut self.rounds[slot];
        debug_assert!(round.outcome[party].is_none(), "cursor guarantees fresh");
        let bit = match round.outcome[other] {
            // First to decide: uniform marginal (no-signaling).
            None => self.rng.gen::<bool>(),
            // Second: Born-rule conditional on the peer's bit.
            Some((peer_input, peer_bit)) => {
                let c = if party == 0 {
                    (self.corr)(input, peer_input)
                } else {
                    (self.corr)(peer_input, input)
                };
                let agree = self.rng.gen::<f64>() < (1.0 + c) / 2.0;
                if agree {
                    peer_bit
                } else {
                    !peer_bit
                }
            }
        };
        round.outcome[party] = Some((input, bit));
        let servers = match n_servers {
            None => None,
            Some(n) => {
                if self.rounds[slot].servers.is_none() {
                    let s0 = self.rng.gen_range(0..n);
                    let mut s1 = self.rng.gen_range(0..n - 1);
                    if s1 >= s0 {
                        s1 += 1;
                    }
                    self.rounds[slot].servers = Some((s0, s1));
                }
                self.rounds[slot].servers
            }
        };
        self.gc();
        Ok((bit, servers))
    }

    /// Drops rounds both parties have consumed.
    fn gc(&mut self) {
        let min_cursor = self.cursor[0].min(self.cursor[1]);
        while self.base < min_cursor {
            let front = &self.rounds[0];
            if front.outcome[0].is_none() || front.outcome[1].is_none() {
                break;
            }
            self.rounds.pop_front();
            self.base += 1;
        }
    }
}

fn shared(corr: Box<dyn Fn(usize, usize) -> f64 + Send>, seed: u64) -> Arc<Mutex<Inner>> {
    Arc::new(Mutex::new(Inner {
        corr,
        rng: StdRng::seed_from_u64(seed),
        rounds: VecDeque::new(),
        base: 0,
        cursor: [0, 0],
    }))
}

/// Builder for coordinators.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorBuilder {
    seed: u64,
    visibility: f64,
}

impl Default for CoordinatorBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CoordinatorBuilder {
    /// A builder with a fixed default seed and perfect pairs.
    pub fn new() -> Self {
        CoordinatorBuilder {
            seed: 0,
            visibility: 1.0,
        }
    }

    /// Sets the RNG seed (determinism for tests and reproducibility).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the entangled-pair visibility (1.0 = ideal; the CHSH
    /// advantage survives while `v > 1/√2`).
    ///
    /// # Panics
    /// Panics if `visibility ∉ [0, 1]`.
    pub fn visibility(mut self, visibility: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&visibility),
            "visibility {visibility} outside [0, 1]"
        );
        self.visibility = visibility;
        self
    }

    /// Builds the two-class (C/E) co-location coordinator of §4.1.
    pub fn build_colocation(self) -> ColocationCoordinator {
        let v = self.visibility;
        let f = std::f64::consts::FRAC_1_SQRT_2;
        // Flipped CHSH: agree (same server) only when both inputs are C.
        let corr = move |x: usize, y: usize| -> f64 {
            if x == 1 && y == 1 {
                v * f
            } else {
                -v * f
            }
        };
        ColocationCoordinator {
            inner: shared(Box::new(corr), self.seed),
        }
    }

    /// Builds a multi-class coordinator from an affinity graph: solves the
    /// graph's XOR game for the optimal quantum strategy and uses its
    /// correlation matrix. Solve time is polynomial in the number of task
    /// classes (§4.1).
    ///
    /// # Panics
    /// Panics if the graph exceeds the classical enumeration limit
    /// (`games::xor::ENUM_LIMIT` vertices) — far beyond any coordinator
    /// deployment size the paper considers.
    pub fn build_affinity(self, graph: &AffinityGraph) -> AffinityCoordinator {
        let game = graph.to_xor_game(true);
        let mut solver_rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let solution = game.quantum_solution(8, &mut solver_rng);
        let c = solution.correlation_matrix();
        let v = self.visibility;
        let n = graph.n_vertices();
        let corr = move |x: usize, y: usize| -> f64 { (v * c[(x, y)]).clamp(-1.0, 1.0) };
        AffinityCoordinator {
            inner: shared(Box::new(corr), self.seed),
            n_classes: n,
            quantum_value: solution.value,
            classical_value: game
                .classical_value()
                .expect("coordinator graphs stay below the enumeration limit"),
        }
    }
}

/// A two-endpoint C/E co-location coordinator (flipped CHSH).
pub struct ColocationCoordinator {
    inner: Arc<Mutex<Inner>>,
}

impl ColocationCoordinator {
    /// The two endpoint handles (give one to each load balancer).
    pub fn endpoints(&self) -> (Endpoint, Endpoint) {
        (
            Endpoint {
                inner: Arc::clone(&self.inner),
                party: 0,
            },
            Endpoint {
                inner: Arc::clone(&self.inner),
                party: 1,
            },
        )
    }
}

/// One side of a [`ColocationCoordinator`].
pub struct Endpoint {
    inner: Arc<Mutex<Inner>>,
    party: usize,
}

impl Endpoint {
    /// Decides this round's bit from the local input only. Zero latency;
    /// correlated with the peer's bit per the flipped CHSH game.
    ///
    /// # Panics
    /// Panics if this endpoint runs more than [`MAX_ROUND_AHEAD`] rounds
    /// ahead of its peer (use [`Endpoint::try_decide`] to handle that
    /// case gracefully).
    pub fn decide(&self, class: TaskClass) -> bool {
        self.try_decide(class).expect("round overrun")
    }

    /// Fallible variant of [`Endpoint::decide`].
    ///
    /// # Errors
    /// [`CoreError::RoundOverrun`] if the peer has stalled.
    pub fn try_decide(&self, class: TaskClass) -> Result<bool, CoreError> {
        self.inner
            .lock()
            .expect("coordinator lock poisoned")
            .decide(self.party, class.index())
    }

    /// Full §4.1 load-balancer decision: pick one of `n_servers` using
    /// the round's shared candidate pair and this endpoint's decision
    /// bit. When both endpoints' tasks are [`TaskClass::Colocate`], they
    /// land on the same server with probability cos²(π/8).
    ///
    /// # Panics
    /// Panics on round overrun or `n_servers < 2`.
    pub fn decide_server(&self, class: TaskClass, n_servers: usize) -> usize {
        assert!(n_servers >= 2, "need at least two servers");
        let mut inner = self.inner.lock().expect("coordinator lock poisoned");
        let (bit, servers) = inner
            .decide_full(self.party, class.index(), Some(n_servers))
            .expect("round overrun");
        let (s0, s1) = servers.expect("requested servers");
        if bit {
            s1
        } else {
            s0
        }
    }
}

/// A two-endpoint multi-class coordinator built from an affinity graph.
pub struct AffinityCoordinator {
    inner: Arc<Mutex<Inner>>,
    n_classes: usize,
    /// The solved quantum value of the underlying XOR game.
    pub quantum_value: f64,
    /// The exact classical value of the underlying XOR game.
    pub classical_value: f64,
}

impl AffinityCoordinator {
    /// The two endpoint handles.
    pub fn endpoints(&self) -> (AffinityEndpoint, AffinityEndpoint) {
        (
            AffinityEndpoint {
                inner: Arc::clone(&self.inner),
                party: 0,
                n_classes: self.n_classes,
            },
            AffinityEndpoint {
                inner: Arc::clone(&self.inner),
                party: 1,
                n_classes: self.n_classes,
            },
        )
    }

    /// True if the configured graph's game has a quantum advantage.
    pub fn has_quantum_advantage(&self) -> bool {
        self.quantum_value > self.classical_value + 1e-4
    }
}

/// One side of an [`AffinityCoordinator`].
pub struct AffinityEndpoint {
    inner: Arc<Mutex<Inner>>,
    party: usize,
    n_classes: usize,
}

impl AffinityEndpoint {
    /// Decides this round's bit from the local task class (a graph
    /// vertex).
    ///
    /// # Errors
    /// [`CoreError::UnknownTaskClass`] for an out-of-range vertex;
    /// [`CoreError::RoundOverrun`] if the peer has stalled.
    pub fn decide(&self, class: usize) -> Result<bool, CoreError> {
        if class >= self.n_classes {
            return Err(CoreError::UnknownTaskClass {
                vertex: class,
                n_classes: self.n_classes,
            });
        }
        self.inner
            .lock()
            .expect("coordinator lock poisoned")
            .decide(self.party, class)
    }
}

/// Convenience: build the underlying XOR game for a graph (exposed so
/// callers can inspect values without building a coordinator).
pub fn graph_game(graph: &AffinityGraph) -> XorGame {
    graph.to_xor_game(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocation_rates_match_chsh() {
        let pair = CoordinatorBuilder::new().seed(1).build_colocation();
        let (a, b) = pair.endpoints();
        let trials = 30_000;
        let expect = games::chsh_quantum_value();
        let cases = [
            (TaskClass::Colocate, TaskClass::Colocate, true),
            (TaskClass::Colocate, TaskClass::Exclusive, false),
            (TaskClass::Exclusive, TaskClass::Colocate, false),
            (TaskClass::Exclusive, TaskClass::Exclusive, false),
        ];
        for (ca, cb, want_same) in cases {
            let mut ok = 0usize;
            for _ in 0..trials {
                let da = a.decide(ca);
                let db = b.decide(cb);
                ok += usize::from((da == db) == want_same);
            }
            let f = ok as f64 / trials as f64;
            assert!(
                (f - expect).abs() < 0.01,
                "({ca:?},{cb:?}): success {f} vs {expect}"
            );
        }
    }

    #[test]
    fn order_independence() {
        // B deciding before A must produce the same statistics.
        let pair = CoordinatorBuilder::new().seed(2).build_colocation();
        let (a, b) = pair.endpoints();
        let trials = 30_000;
        let mut same = 0usize;
        for _ in 0..trials {
            let db = b.decide(TaskClass::Colocate);
            let da = a.decide(TaskClass::Colocate);
            same += usize::from(da == db);
        }
        let f = same as f64 / trials as f64;
        assert!((f - games::chsh_quantum_value()).abs() < 0.01, "rate {f}");
    }

    #[test]
    fn marginals_are_uniform() {
        let pair = CoordinatorBuilder::new().seed(3).build_colocation();
        let (a, b) = pair.endpoints();
        let trials = 30_000;
        let mut a_ones = 0usize;
        for i in 0..trials {
            let class = if i % 2 == 0 {
                TaskClass::Colocate
            } else {
                TaskClass::Exclusive
            };
            a_ones += usize::from(a.decide(class));
            let _ = b.decide(TaskClass::Exclusive);
        }
        let f = a_ones as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.01, "marginal {f}");
    }

    #[test]
    fn decide_server_colocates_cc() {
        let pair = CoordinatorBuilder::new().seed(4).build_colocation();
        let (a, b) = pair.endpoints();
        let trials = 20_000;
        let mut same = 0usize;
        for _ in 0..trials {
            let sa = a.decide_server(TaskClass::Colocate, 10);
            let sb = b.decide_server(TaskClass::Colocate, 10);
            assert!(sa < 10 && sb < 10);
            same += usize::from(sa == sb);
        }
        let f = same as f64 / trials as f64;
        assert!(
            (f - games::chsh_quantum_value()).abs() < 0.01,
            "co-location rate {f}"
        );
    }

    #[test]
    fn round_overrun_detected() {
        let pair = CoordinatorBuilder::new().seed(5).build_colocation();
        let (a, _b) = pair.endpoints();
        for _ in 0..MAX_ROUND_AHEAD {
            a.try_decide(TaskClass::Colocate).unwrap();
        }
        assert!(matches!(
            a.try_decide(TaskClass::Colocate),
            Err(CoreError::RoundOverrun { .. })
        ));
    }

    #[test]
    fn degraded_visibility_reduces_correlation() {
        let pair = CoordinatorBuilder::new()
            .seed(6)
            .visibility(0.5)
            .build_colocation();
        let (a, b) = pair.endpoints();
        let trials = 30_000;
        let mut ok = 0usize;
        for _ in 0..trials {
            let da = a.decide(TaskClass::Colocate);
            let db = b.decide(TaskClass::Colocate);
            ok += usize::from(da == db);
        }
        let f = ok as f64 / trials as f64;
        let expect = 0.5 + 0.5 * std::f64::consts::FRAC_1_SQRT_2 / 2.0;
        assert!((f - expect).abs() < 0.01, "rate {f} vs {expect}");
    }

    #[test]
    fn affinity_coordinator_beats_classical_on_frustrated_graph() {
        let graph = AffinityGraph::from_edges(3, &[(0, 1, true)]);
        let coord = CoordinatorBuilder::new().seed(7).build_affinity(&graph);
        assert!(coord.has_quantum_advantage());
        let (a, b) = coord.endpoints();

        // Empirical win rate over uniform vertex pairs must approach the
        // solved quantum value and beat the classical value.
        let game = graph_game(&graph);
        let trials = 60_000;
        let mut rng = StdRng::seed_from_u64(99);
        let mut wins = 0usize;
        for _ in 0..trials {
            let x = rng.gen_range(0..3);
            let y = rng.gen_range(0..3);
            let da = a.decide(x).unwrap();
            let db = b.decide(y).unwrap();
            let want_differ = graph.is_exclusive(x, y);
            wins += usize::from((da != db) == want_differ);
        }
        let f = wins as f64 / trials as f64;
        assert!(
            f > game.classical_value().unwrap() + 0.01,
            "win rate {f} vs classical {}",
            game.classical_value().unwrap()
        );
        assert!(
            (f - coord.quantum_value).abs() < 0.01,
            "win rate {f} vs quantum {}",
            coord.quantum_value
        );
    }

    #[test]
    fn affinity_rejects_unknown_class() {
        let graph = AffinityGraph::from_edges(3, &[]);
        let coord = CoordinatorBuilder::new().build_affinity(&graph);
        let (a, _) = coord.endpoints();
        assert!(matches!(
            a.decide(3),
            Err(CoreError::UnknownTaskClass { vertex: 3, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "visibility")]
    fn bad_visibility_panics() {
        CoordinatorBuilder::new().visibility(1.5);
    }

    #[test]
    fn endpoints_are_send() {
        fn assert_send<T: Send>(_: &T) {}
        let pair = CoordinatorBuilder::new().build_colocation();
        let (a, b) = pair.endpoints();
        assert_send(&a);
        assert_send(&b);
    }
}
