//! # qnlg-core — coordination-without-communication primitives
//!
//! The paper's concluding vision (§5): package quantum non-local games as
//! "system-level abstractions that systems designers can adopt without
//! needing to understand the underlying quantum mechanics." This crate is
//! that abstraction layer.
//!
//! ## The model
//!
//! Two (or more) spatially-separated endpoints each hold a handle. When an
//! input arrives at an endpoint, it calls [`Endpoint::decide`] with *its
//! own input only* and gets a decision bit back **immediately** — no
//! network round trip (Fig. 2). The bits of the endpoints in the same
//! round are *correlated* according to the configured game:
//!
//! - [`ColocationCoordinator`] — the flipped CHSH game of §4.1: decision
//!   bits agree (→ same server) with probability cos²(π/8) ≈ 0.854 exactly
//!   when both inputs are "co-locate", and disagree with the same
//!   probability otherwise. The best classical coordinator gets 0.75.
//! - [`AffinityCoordinator`] — the general XOR-game version for ≥ 2 task
//!   classes on an [`games::AffinityGraph`]: the optimal quantum strategy
//!   is solved once at build time (§4.1 "a polynomial-time algorithm
//!   exists"), then sampled per round.
//! - [`ParityCoordinator`] — the n-party Mermin-game primitive: on
//!   even-weight input rounds, the parties' output parity tracks a
//!   function of their joint inputs *with certainty*, versus a classical
//!   ceiling of `1/2 + 2^{−⌈n/2⌉}` — the advantage grows with n (§4.1).
//!
//! In production the correlation would come from entangled photon pairs
//! streamed by the Fig. 1 source; in this library it comes from
//! [`qsim`]'s exact simulation (or the statistically-identical closed
//! form). The *interface* — decide locally, now, with no knowledge of the
//! peer's input — is the same, and the no-signaling property is enforced
//! by construction and verified by tests.
//!
//! ## Quick example
//!
//! ```
//! use qnlg_core::{CoordinatorBuilder, TaskClass};
//!
//! let pair = CoordinatorBuilder::new().seed(7).build_colocation();
//! let (alice, bob) = pair.endpoints();
//!
//! // Each endpoint decides locally, instantly:
//! let a = alice.decide(TaskClass::Colocate);
//! let b = bob.decide(TaskClass::Colocate);
//! // With both inputs Colocate, a == b (same server) ~85% of rounds.
//! let _ = (a, b);
//! ```

pub mod coordinator;
pub mod error;
pub mod parity;

pub use coordinator::{
    AffinityCoordinator, ColocationCoordinator, CoordinatorBuilder, Endpoint, TaskClass,
};
pub use error::CoreError;
pub use parity::{ParityCoordinator, ParityEndpoint};

// Re-export the layers beneath for users who need to reach in.
pub use ecmp;
pub use games;
pub use loadbalance;
pub use qmath;
pub use qnet;
pub use qsim;
