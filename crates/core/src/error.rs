//! Error type for the coordination API.

use std::fmt;

/// Errors surfaced by the high-level coordination API.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An endpoint decided twice in the same round without its peer
    /// catching up, exceeding the buffered-round limit.
    RoundOverrun {
        /// How far ahead the endpoint ran.
        ahead: usize,
    },
    /// Configuration parameter out of range.
    BadConfig {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An input vertex was outside the affinity graph.
    UnknownTaskClass {
        /// The offending vertex index.
        vertex: usize,
        /// Number of classes configured.
        n_classes: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::RoundOverrun { ahead } => {
                write!(f, "endpoint ran {ahead} rounds ahead of its peer")
            }
            CoreError::BadConfig { what, value } => {
                write!(f, "bad configuration: {what} = {value}")
            }
            CoreError::UnknownTaskClass { vertex, n_classes } => {
                write!(f, "task class {vertex} outside the {n_classes}-class graph")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CoreError::RoundOverrun { ahead: 3 }.to_string().contains('3'));
        assert!(CoreError::UnknownTaskClass {
            vertex: 9,
            n_classes: 5
        }
        .to_string()
        .contains('9'));
    }
}
