//! N-party parity coordination: the Mermin game as a system primitive.
//!
//! §4.1 notes that XOR games "have also been extended to more than two
//! players, corresponding to scenarios with more than two load balancers,
//! where the advantage is larger than in the two-party case." The
//! n-player Mermin game is the extreme case: sharing a GHZ state, the
//! parties can make their output bits' **parity** track a function of
//! their joint inputs *perfectly*, while the best classical scheme
//! succeeds with probability only `1/2 + 2^{−⌈n/2⌉}` (§ refs [12, 31]).
//!
//! Contract: in each round every endpoint calls
//! [`ParityEndpoint::decide`] with its local input bit. If the round's
//! inputs have **even weight** (the Mermin promise), the XOR of all
//! output bits equals `(weight mod 4)/2` with certainty. Individual
//! outputs remain uniformly random — no endpoint learns anything about
//! the others.
//!
//! The referee implementation samples the exact GHZ X/Y measurement
//! statistics in arrival order: every party's marginal is an unbiased
//! coin (no-signaling), and the final arrival's bit closes the parity —
//! cross-validated against the full statevector simulation in
//! `games::multiparty`.

use crate::error::CoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::coordinator::MAX_ROUND_AHEAD;

struct Round {
    /// Per-party (input, output) once decided.
    outcome: Vec<Option<(bool, bool)>>,
}

struct Inner {
    n: usize,
    rng: StdRng,
    rounds: VecDeque<Round>,
    base: u64,
    cursor: Vec<u64>,
}

impl Inner {
    fn decide(&mut self, party: usize, input: bool) -> Result<bool, CoreError> {
        let min_cursor = self.cursor.iter().copied().min().expect("n ≥ 2");
        let ahead = self.cursor[party].saturating_sub(min_cursor) as usize;
        if ahead >= MAX_ROUND_AHEAD {
            return Err(CoreError::RoundOverrun { ahead });
        }
        let idx = self.cursor[party];
        self.cursor[party] += 1;
        while self.base + (self.rounds.len() as u64) <= idx {
            self.rounds.push_back(Round {
                outcome: vec![None; self.n],
            });
        }
        let slot = (idx - self.base) as usize;
        let round = &mut self.rounds[slot];
        debug_assert!(round.outcome[party].is_none(), "cursor guarantees fresh");

        let undecided = round.outcome.iter().filter(|o| o.is_none()).count();
        let bit = if undecided > 1 {
            // Not the last arrival: GHZ X/Y marginals are uniform coins.
            self.rng.gen::<bool>()
        } else {
            // Last arrival: close the parity per the GHZ statistics.
            let mut weight = usize::from(input);
            let mut parity = false;
            for o in round.outcome.iter().flatten() {
                weight += usize::from(o.0);
                parity ^= o.1;
            }
            if weight % 2 == 0 {
                // Promise satisfied: total parity = (weight mod 4)/2.
                let target = weight % 4 == 2;
                parity ^ target
            } else {
                // Promise violated: GHZ gives uniform parity (the X/Y
                // string with odd Y-count has zero GHZ expectation).
                self.rng.gen::<bool>()
            }
        };
        round.outcome[party] = Some((input, bit));
        // GC fully-consumed front rounds.
        let min_cursor = self.cursor.iter().copied().min().expect("n ≥ 2");
        while self.base < min_cursor
            && self
                .rounds
                .front()
                .is_some_and(|r| r.outcome.iter().all(Option::is_some))
        {
            self.rounds.pop_front();
            self.base += 1;
        }
        Ok(bit)
    }
}

/// An n-party parity coordinator backed by (simulated) GHZ states.
pub struct ParityCoordinator {
    inner: Arc<Mutex<Inner>>,
    n: usize,
}

impl ParityCoordinator {
    /// Builds a coordinator for `n ≥ 2` parties with a deterministic seed.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "parity coordination needs at least two parties");
        ParityCoordinator {
            inner: Arc::new(Mutex::new(Inner {
                n,
                rng: StdRng::seed_from_u64(seed),
                rounds: VecDeque::new(),
                base: 0,
                cursor: vec![0; n],
            })),
            n,
        }
    }

    /// The endpoint handles, one per party.
    pub fn endpoints(&self) -> Vec<ParityEndpoint> {
        (0..self.n)
            .map(|party| ParityEndpoint {
                inner: Arc::clone(&self.inner),
                party,
            })
            .collect()
    }

    /// Number of parties.
    pub fn n_parties(&self) -> usize {
        self.n
    }

    /// The classical ceiling this primitive beats:
    /// `1/2 + 2^{−⌈n/2⌉}`.
    pub fn classical_ceiling(&self) -> f64 {
        games::multiparty::mermin_classical_bound(self.n)
    }
}

/// One party's handle on a [`ParityCoordinator`].
pub struct ParityEndpoint {
    inner: Arc<Mutex<Inner>>,
    party: usize,
}

impl ParityEndpoint {
    /// Decides this round's bit from the local input only (zero latency).
    /// When the round's inputs have even weight, the XOR of all parties'
    /// bits equals `(weight mod 4)/2` with certainty.
    ///
    /// # Errors
    /// [`CoreError::RoundOverrun`] if this endpoint runs too far ahead of
    /// the slowest peer.
    pub fn decide(&self, input: bool) -> Result<bool, CoreError> {
        self.inner
            .lock()
            .expect("parity coordinator lock poisoned")
            .decide(self.party, input)
    }

    /// This endpoint's party index.
    pub fn party(&self) -> usize {
        self.party
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use games::multiparty::{mermin_inputs, mermin_wins};

    #[test]
    fn perfect_parity_on_even_weight_inputs() {
        for n in [3usize, 4, 5] {
            let coord = ParityCoordinator::new(n, 7);
            let eps = coord.endpoints();
            let inputs = mermin_inputs(n);
            for round in 0..400 {
                let x = &inputs[round % inputs.len()];
                let outs: Vec<bool> = eps
                    .iter()
                    .zip(x)
                    .map(|(e, &xi)| e.decide(xi == 1).expect("in lockstep"))
                    .collect();
                assert!(
                    mermin_wins(x, &outs),
                    "n = {n}, round {round}: lost on {x:?} → {outs:?}"
                );
            }
        }
    }

    #[test]
    fn beats_classical_ceiling_by_construction() {
        let coord = ParityCoordinator::new(5, 1);
        assert!((coord.classical_ceiling() - 0.625).abs() < 1e-12);
        // Quantum rate is exactly 1 on the promise (previous test); the
        // ceiling is what classical schemes top out at.
        assert!(1.0 > coord.classical_ceiling());
    }

    #[test]
    fn outputs_are_marginally_uniform() {
        let coord = ParityCoordinator::new(3, 2);
        let eps = coord.endpoints();
        let inputs = mermin_inputs(3);
        let mut ones = [0usize; 3];
        let rounds = 6000;
        for round in 0..rounds {
            let x = &inputs[round % inputs.len()];
            for (p, (e, &xi)) in eps.iter().zip(x).enumerate() {
                ones[p] += usize::from(e.decide(xi == 1).expect("lockstep"));
            }
        }
        for (p, o) in ones.iter().enumerate() {
            let f = *o as f64 / rounds as f64;
            assert!((f - 0.5).abs() < 0.03, "party {p} marginal {f}");
        }
    }

    #[test]
    fn arrival_order_does_not_matter() {
        // Parties decide in rotating order; parity still perfect.
        let coord = ParityCoordinator::new(4, 3);
        let eps = coord.endpoints();
        let inputs = mermin_inputs(4);
        for round in 0..200 {
            let x = &inputs[round % inputs.len()];
            let mut outs = vec![false; 4];
            for k in 0..4 {
                let p = (round + k) % 4;
                outs[p] = eps[p].decide(x[p] == 1).expect("lockstep");
            }
            assert!(mermin_wins(x, &outs), "round {round}");
        }
    }

    #[test]
    fn promise_violation_gives_uniform_parity() {
        // Odd-weight inputs: the parity must be a fair coin, not stuck.
        let coord = ParityCoordinator::new(3, 4);
        let eps = coord.endpoints();
        let rounds = 4000;
        let mut odd_parity = 0usize;
        for _ in 0..rounds {
            let x = [true, false, false]; // weight 1: promise violated
            let outs: Vec<bool> = eps
                .iter()
                .zip(&x)
                .map(|(e, &xi)| e.decide(xi).expect("lockstep"))
                .collect();
            odd_parity += usize::from(outs.iter().fold(false, |a, &b| a ^ b));
        }
        let f = odd_parity as f64 / rounds as f64;
        assert!((f - 0.5).abs() < 0.03, "violated-promise parity rate {f}");
    }

    #[test]
    fn overrun_guard() {
        let coord = ParityCoordinator::new(2, 5);
        let eps = coord.endpoints();
        for _ in 0..MAX_ROUND_AHEAD {
            eps[0].decide(false).expect("below the cap");
        }
        assert!(matches!(
            eps[0].decide(false),
            Err(CoreError::RoundOverrun { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least two parties")]
    fn one_party_rejected() {
        ParityCoordinator::new(1, 0);
    }
}
