//! ECMP path-selection strategies.
//!
//! The crucial constraint: a switch does *not* know which other switches
//! are active this round. Its choice may depend only on its own identity
//! and pre-shared resources (randomness or entanglement). Note this is
//! exactly why entanglement cannot help here (§4.2): there is no per-round
//! *input* to condition the measurement basis on, so the joint output
//! distribution is a fixed (round-independent) distribution — something
//! shared classical randomness can replicate.

use crate::model::EcmpScenario;
use qsim::measure::Basis1;
use qsim::{bell, SharedState, StateVector};
use rand::Rng;

/// A path-selection strategy. `choose_paths` receives the active set only
/// to index per-switch resources; implementations must not let one
/// switch's choice depend on *which* other switches are active.
pub trait EcmpStrategy {
    /// Chooses a path for each active switch (same order as `active`).
    fn choose_paths(
        &mut self,
        scenario: EcmpScenario,
        active: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize>;

    /// Name for report tables.
    fn name(&self) -> &'static str;
}

/// Baseline: each switch flips independent coins (per-packet ECMP
/// hashing).
#[derive(Debug, Clone, Copy, Default)]
pub struct IidRandom;

impl EcmpStrategy for IidRandom {
    fn choose_paths(
        &mut self,
        scenario: EcmpScenario,
        active: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        active
            .iter()
            .map(|_| rng.gen_range(0..scenario.n_paths))
            .collect()
    }

    fn name(&self) -> &'static str {
        "iid-random"
    }
}

/// The classical optimum for fixed assignments: a pre-shared balanced
/// permutation mapping switch → path (switch `σ(i)` uses path
/// `σ(i) mod M`). Re-randomized per round via a shared seed in real
/// systems; the distribution of collisions is identical either way.
#[derive(Debug, Clone)]
pub struct SharedPermutation {
    assignment: Vec<usize>,
}

impl SharedPermutation {
    /// Draws a balanced random assignment of `n_switches` to `n_paths`.
    pub fn new<R: Rng>(n_switches: usize, n_paths: usize, rng: &mut R) -> Self {
        let mut order: Vec<usize> = (0..n_switches).collect();
        use rand::seq::SliceRandom;
        order.shuffle(rng);
        let mut assignment = vec![0; n_switches];
        for (pos, &sw) in order.iter().enumerate() {
            assignment[sw] = pos % n_paths;
        }
        SharedPermutation { assignment }
    }
}

impl EcmpStrategy for SharedPermutation {
    fn choose_paths(
        &mut self,
        _scenario: EcmpScenario,
        active: &[usize],
        _rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        active.iter().map(|&sw| self.assignment[sw]).collect()
    }

    fn name(&self) -> &'static str {
        "shared-permutation"
    }
}

/// A quantum strategy for `M = 2` paths: all `N` switches share an
/// entangled state (one qubit each); an active switch measures its qubit
/// in its own fixed basis and uses the outcome as its path bit.
///
/// The measurement angle is fixed per switch — there is no input to vary
/// it by, which is the heart of the paper's impossibility argument.
#[derive(Debug, Clone)]
pub struct GlobalEntangled {
    /// The shared state's constructor kind.
    state: EntangledStateKind,
    /// Per-switch measurement angle (radians).
    angles: Vec<f64>,
}

/// Which N-party entangled state the strategy shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntangledStateKind {
    /// The GHZ state `(|0…0⟩ + |1…1⟩)/√2`.
    Ghz,
    /// The W state (single excitation, symmetrized).
    W,
}

impl GlobalEntangled {
    /// Builds the strategy with per-switch measurement angles.
    ///
    /// # Panics
    /// Panics if `angles` is empty.
    pub fn new(state: EntangledStateKind, angles: Vec<f64>) -> Self {
        assert!(!angles.is_empty(), "need at least one switch angle");
        GlobalEntangled { state, angles }
    }

    fn fresh_state(&self) -> StateVector {
        let n = self.angles.len();
        match self.state {
            EntangledStateKind::Ghz => bell::ghz(n),
            EntangledStateKind::W => bell::w_state(n),
        }
    }
}

impl EcmpStrategy for GlobalEntangled {
    fn choose_paths(
        &mut self,
        scenario: EcmpScenario,
        active: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> Vec<usize> {
        assert_eq!(
            scenario.n_paths, 2,
            "binary measurement outcomes address two paths"
        );
        assert_eq!(
            self.angles.len(),
            scenario.n_switches,
            "one angle per switch"
        );
        // Fresh entangled state each round (a new pair from the stream).
        let mut shared = SharedState::from_pure(self.fresh_state());
        active
            .iter()
            .map(|&sw| {
                let theta = self.angles[sw];
                shared
                    .measure(sw, &Basis1::angle(theta), rng)
                    .expect("each switch measures its own qubit once") as usize
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        match self.state {
            EntangledStateKind::Ghz => "ghz-entangled",
            EntangledStateKind::W => "w-entangled",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{run_rounds, EcmpScenario};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ghz_common_basis_always_collides() {
        // All switches measuring GHZ at angle 0 get identical bits: the
        // *worst* possible ECMP strategy — perfect correlation is exactly
        // what you don't want here.
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = GlobalEntangled::new(EntangledStateKind::Ghz, vec![0.0; 3]);
        let stats = run_rounds(EcmpScenario::minimal(), &mut s, 2_000, &mut rng);
        assert_eq!(stats.collision_probability, 1.0);
    }

    #[test]
    fn ghz_orthogonal_ish_angles_match_classical_not_beat_it() {
        // Angles (0, π/2, …): pairwise correlations E = cos(2Δθ)... for a
        // GHZ pair marginal the agreement is (1 + cosθ_i·cosθ_j)/2.
        // At (0, π/2): 1/2 — no better than a coin. Sweep a few combos and
        // confirm none beats the classical optimum of 1/3.
        let mut rng = StdRng::seed_from_u64(2);
        let classical_opt = 1.0 / 3.0;
        let grid = [
            [0.0, 2.094, 4.189], // 120°-spread
            [0.0, std::f64::consts::FRAC_PI_2, std::f64::consts::PI], // 90°-spread
            [0.524, 1.571, 2.618], // asymmetric
        ];
        for angles in grid {
            let mut s = GlobalEntangled::new(EntangledStateKind::Ghz, angles.to_vec());
            let stats = run_rounds(EcmpScenario::minimal(), &mut s, 30_000, &mut rng);
            assert!(
                stats.collision_probability >= classical_opt - 0.01,
                "angles {angles:?} beat the classical optimum: {}",
                stats.collision_probability
            );
        }
    }

    #[test]
    fn w_state_also_bounded_by_classical() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = GlobalEntangled::new(
            EntangledStateKind::W,
            vec![0.0, 2.094, 4.189],
        );
        let stats = run_rounds(EcmpScenario::minimal(), &mut s, 30_000, &mut rng);
        assert!(
            stats.collision_probability >= 1.0 / 3.0 - 0.01,
            "W state beat classical: {}",
            stats.collision_probability
        );
    }

    #[test]
    fn strategies_have_distinct_names() {
        let mut rng = StdRng::seed_from_u64(4);
        let names = [
            IidRandom.name(),
            SharedPermutation::new(3, 2, &mut rng).name(),
            GlobalEntangled::new(EntangledStateKind::Ghz, vec![0.0]).name(),
            GlobalEntangled::new(EntangledStateKind::W, vec![0.0]).name(),
        ];
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                assert_ne!(names[i], names[j]);
            }
        }
    }
}
