//! # ecmp — Equal-Cost Multi-Path routing and the paper's negative result
//!
//! §4.2 of the paper: `N` switches route over `M < N` paths; only an
//! unknown subset of switches is active at any moment, and no switch knows
//! which others are active. Could shared entanglement reduce path
//! collisions below classical randomization?
//!
//! The paper proves a *partial impossibility*: by the no-signaling
//! principle, any party that receives no packet can be assumed (WLOG) to
//! measure its qubit first, reducing the global entangled state to a
//! mixture of states over the active subset — so `N`-way entanglement
//! offers nothing beyond `M`-way. It further conjectures that no quantum
//! advantage exists for ECMP at all.
//!
//! This crate verifies both numerically:
//!
//! - [`reduction`]: checks, to machine precision, that the joint outcome
//!   distribution of the active parties is invariant under the inactive
//!   party's behaviour (measure in any basis, or not at all) — the exact
//!   content of the no-signaling reduction.
//! - [`search`]: searches over quantum strategies (GHZ / W / random
//!   states, arbitrary per-switch measurement bases) for the small
//!   instances and shows none beats the classical optimum — and, for the
//!   2-of-N-on-2-paths family, proves the classical bound by a pigeonhole
//!   argument that applies to *any* joint output distribution, quantum or
//!   not.
//! - [`model`] / [`strategy`]: the ECMP collision simulator with classical
//!   and quantum strategies.

pub mod model;
pub mod reduction;
pub mod search;
pub mod strategy;

pub use model::{CollisionStats, EcmpScenario};
pub use reduction::reduction_deviation;
pub use search::{classical_optimum_two_active, pigeonhole_lower_bound};
pub use strategy::EcmpStrategy;
