//! The ECMP scenario: N switches, M paths, K active.

use crate::strategy::EcmpStrategy;
use rand::seq::SliceRandom;
use rand::Rng;

/// An ECMP routing scenario.
#[derive(Debug, Clone, Copy)]
pub struct EcmpScenario {
    /// Total switches N.
    pub n_switches: usize,
    /// Available paths M.
    pub n_paths: usize,
    /// Active switches per round K (the subset is drawn uniformly and is
    /// unknown to every switch).
    pub n_active: usize,
}

impl EcmpScenario {
    /// Builds a scenario.
    ///
    /// # Panics
    /// Panics unless `1 ≤ n_active ≤ n_switches` and `n_paths ≥ 2`.
    pub fn new(n_switches: usize, n_paths: usize, n_active: usize) -> Self {
        assert!(n_paths >= 2, "need at least two paths");
        assert!(
            (1..=n_switches).contains(&n_active),
            "active count out of range"
        );
        EcmpScenario {
            n_switches,
            n_paths,
            n_active,
        }
    }

    /// The paper's minimal instance: 3 switches, 2 paths, 2 active.
    pub fn minimal() -> Self {
        EcmpScenario::new(3, 2, 2)
    }
}

/// Collision statistics from a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionStats {
    /// Probability that at least two active switches picked the same path.
    pub collision_probability: f64,
    /// Expected number of colliding (non-unique-path) active switches.
    pub mean_colliding_switches: f64,
    /// Expected maximum per-path load among active switches.
    pub mean_max_path_load: f64,
    /// Rounds simulated.
    pub rounds: usize,
}

/// Runs `rounds` rounds: draw a random active subset, let the strategy
/// pick paths, record collisions.
///
/// # Panics
/// Panics if `rounds == 0`.
pub fn run_rounds<S, R>(
    scenario: EcmpScenario,
    strategy: &mut S,
    rounds: usize,
    rng: &mut R,
) -> CollisionStats
where
    S: EcmpStrategy + ?Sized,
    R: Rng,
{
    assert!(rounds > 0, "need at least one round");
    let mut any_collision = 0usize;
    let mut colliding_switches = 0usize;
    let mut max_load_sum = 0usize;
    let mut ids: Vec<usize> = (0..scenario.n_switches).collect();
    let mut loads = vec![0usize; scenario.n_paths];

    for _ in 0..rounds {
        ids.shuffle(rng);
        let active = &ids[..scenario.n_active];
        let choices = strategy.choose_paths(scenario, active, rng);
        debug_assert_eq!(choices.len(), active.len());

        loads.iter_mut().for_each(|l| *l = 0);
        for &p in &choices {
            debug_assert!(p < scenario.n_paths);
            loads[p] += 1;
        }
        let max_load = loads.iter().copied().max().unwrap_or(0);
        let colliding: usize = loads.iter().filter(|&&l| l > 1).sum();
        any_collision += usize::from(max_load > 1);
        colliding_switches += colliding;
        max_load_sum += max_load;
    }

    CollisionStats {
        collision_probability: any_collision as f64 / rounds as f64,
        mean_colliding_switches: colliding_switches as f64 / rounds as f64,
        mean_max_path_load: max_load_sum as f64 / rounds as f64,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{IidRandom, SharedPermutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn iid_random_collision_two_of_three_on_two_paths() {
        // Two active switches, two paths, independent fair coins:
        // collision probability 1/2.
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = IidRandom;
        let stats = run_rounds(EcmpScenario::minimal(), &mut s, 50_000, &mut rng);
        assert!(
            (stats.collision_probability - 0.5).abs() < 0.01,
            "collision {}",
            stats.collision_probability
        );
    }

    #[test]
    fn shared_permutation_achieves_classical_optimum() {
        // Balanced fixed assignment of 3 switches to 2 paths: exactly one
        // pair shares a path → collision probability 1/3.
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = SharedPermutation::new(3, 2, &mut rng);
        let stats = run_rounds(EcmpScenario::minimal(), &mut s, 60_000, &mut rng);
        assert!(
            (stats.collision_probability - 1.0 / 3.0).abs() < 0.01,
            "collision {}",
            stats.collision_probability
        );
    }

    #[test]
    fn enough_paths_enable_zero_collisions() {
        // N = M with a shared permutation: every switch owns a path.
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = SharedPermutation::new(4, 4, &mut rng);
        let sc = EcmpScenario::new(4, 4, 3);
        let stats = run_rounds(sc, &mut s, 5_000, &mut rng);
        assert_eq!(stats.collision_probability, 0.0);
        assert_eq!(stats.mean_max_path_load, 1.0);
    }

    #[test]
    fn stats_are_consistent() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = IidRandom;
        let sc = EcmpScenario::new(8, 4, 4);
        let stats = run_rounds(sc, &mut s, 10_000, &mut rng);
        assert!(stats.collision_probability > 0.0);
        assert!(stats.mean_max_path_load >= 1.0);
        assert!(stats.mean_colliding_switches <= 4.0);
    }

    #[test]
    #[should_panic(expected = "active count out of range")]
    fn too_many_active_panics() {
        EcmpScenario::new(3, 2, 4);
    }
}
