//! Numerical verification of the §4.2 no-signaling reduction.
//!
//! The paper's argument: place inactive switch C far from active switches
//! A and B. The no-signaling principle forces the joint distribution of
//! A's and B's outcomes to be independent of anything C does. Hence we may
//! assume WLOG that C measures *first* — which reduces the tripartite
//! state to a probabilistic mixture of bipartite (A, B) states. Global
//! (3-way) entanglement therefore buys nothing beyond 2-way entanglement
//! plus shared randomness.
//!
//! This module checks the equality
//!
//! ```text
//! P(a, b | A, B measure; C silent)  ==  P(a, b | C measured first in any basis)
//! ```
//!
//! exactly, via density matrices, for arbitrary tripartite states and
//! arbitrary measurement bases.

use qsim::measure::Basis1;
use qsim::{DensityMatrix, SimError, StateVector};

/// Joint distribution `P(a, b)` over the 4 outcomes of parties 0 and 1 of
/// a tripartite state measuring in `basis_a` / `basis_b`, with party 2
/// left unmeasured (traced out).
///
/// # Errors
/// Propagates simulator errors (wrong qubit counts).
pub fn joint_ab_traced(
    state: &StateVector,
    basis_a: &Basis1,
    basis_b: &Basis1,
) -> Result<[f64; 4], SimError> {
    let rho = DensityMatrix::from_pure(state);
    let rho_ab = rho.partial_trace(&[0, 1])?;
    joint_from_bipartite(&rho_ab, basis_a, basis_b)
}

/// Joint distribution `P(a, b)` when party 2 measures *first* in
/// `basis_c`, then parties 0 and 1 measure: the mixture over C's outcomes
/// of the conditional bipartite distributions.
///
/// # Errors
/// Propagates simulator errors.
pub fn joint_ab_after_c_measures(
    state: &StateVector,
    basis_a: &Basis1,
    basis_b: &Basis1,
    basis_c: &Basis1,
) -> Result<[f64; 4], SimError> {
    let rho = DensityMatrix::from_pure(state);
    let mut total = [0.0f64; 4];
    for c_outcome in 0..2u8 {
        // Project C on its outcome (Lüders), weight by its probability.
        let p1 = rho.prob_one_in_basis(2, basis_c)?;
        let p_c = if c_outcome == 1 { p1 } else { 1.0 - p1 };
        if p_c < 1e-15 {
            continue;
        }
        let mut conditional = rho.clone();
        // Deterministically project instead of sampling: use a fake "rng"
        // by projecting manually via measure probabilities. We rebuild the
        // projected state with the projector embedding used by
        // measure_in_basis, but deterministically.
        let projected = project_party(&conditional, 2, basis_c, c_outcome)?;
        conditional = projected;
        let rho_ab = conditional.partial_trace(&[0, 1])?;
        let cond_dist = joint_from_bipartite(&rho_ab, basis_a, basis_b)?;
        for (t, c) in total.iter_mut().zip(cond_dist) {
            *t += p_c * c;
        }
    }
    Ok(total)
}

/// The maximum absolute difference between the traced-out and
/// measured-first distributions — zero (to round-off) by no-signaling.
///
/// # Errors
/// Propagates simulator errors.
pub fn reduction_deviation(
    state: &StateVector,
    basis_a: &Basis1,
    basis_b: &Basis1,
    basis_c: &Basis1,
) -> Result<f64, SimError> {
    let traced = joint_ab_traced(state, basis_a, basis_b)?;
    let measured = joint_ab_after_c_measures(state, basis_a, basis_b, basis_c)?;
    Ok(traced
        .iter()
        .zip(&measured)
        .map(|(t, m)| (t - m).abs())
        .fold(0.0, f64::max))
}

/// Projects `party` of `rho` onto `outcome` in `basis` and renormalizes
/// (the deterministic Lüders update used to enumerate C's branches).
fn project_party(
    rho: &DensityMatrix,
    party: usize,
    basis: &Basis1,
    outcome: u8,
) -> Result<DensityMatrix, SimError> {
    // Reuse the public measurement API with a rigged "rng" that forces the
    // desired branch: measure_in_basis draws one f64 and compares with
    // P(1) — feed it 0.0 to force outcome 1, 1-ε... simpler and more
    // honest: construct the projector directly here.
    use qmath::{CMatrix, C64};
    let phi = if outcome == 1 { basis.phi1 } else { basis.phi0 };
    let proj2 = CMatrix::from_vec(
        2,
        2,
        vec![
            phi[0] * phi[0].conj(),
            phi[0] * phi[1].conj(),
            phi[1] * phi[0].conj(),
            phi[1] * phi[1].conj(),
        ],
    )
    .expect("2x2");
    let n = rho.n_qubits();
    if party >= n {
        return Err(SimError::QubitOutOfRange {
            qubit: party,
            n_qubits: n,
        });
    }
    let left = CMatrix::identity(1 << party);
    let right = CMatrix::identity(1 << (n - 1 - party));
    let full = left.kron(&proj2).kron(&right);
    let projected = full
        .matmul(rho.matrix())
        .and_then(|m| m.matmul(&full))
        .expect("square");
    let norm = projected.trace().re;
    if norm < 1e-15 {
        return Err(SimError::BadProbability { value: norm });
    }
    DensityMatrix::from_matrix(projected.scaled(C64::real(1.0 / norm)))
}

/// `P(a, b)` for a bipartite density matrix measured in product bases.
fn joint_from_bipartite(
    rho_ab: &DensityMatrix,
    basis_a: &Basis1,
    basis_b: &Basis1,
) -> Result<[f64; 4], SimError> {
    use qmath::CMatrix;
    let proj = |basis: &Basis1, outcome: usize| -> CMatrix {
        let phi = if outcome == 1 { basis.phi1 } else { basis.phi0 };
        CMatrix::from_vec(
            2,
            2,
            vec![
                phi[0] * phi[0].conj(),
                phi[0] * phi[1].conj(),
                phi[1] * phi[0].conj(),
                phi[1] * phi[1].conj(),
            ],
        )
        .expect("2x2")
    };
    let mut out = [0.0f64; 4];
    for a in 0..2 {
        for b in 0..2 {
            let joint = proj(basis_a, a).kron(&proj(basis_b, b));
            out[a * 2 + b] = rho_ab.expectation(&joint)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::C64;
    use qsim::bell;

    fn bases() -> Vec<Basis1> {
        vec![
            Basis1::computational(),
            Basis1::angle(0.3),
            Basis1::angle(std::f64::consts::FRAC_PI_4),
            Basis1::angle(1.2),
            // A complex basis (Y-like).
            Basis1::new(
                [
                    C64::real(std::f64::consts::FRAC_1_SQRT_2),
                    C64::new(0.0, std::f64::consts::FRAC_1_SQRT_2),
                ],
                [
                    C64::real(std::f64::consts::FRAC_1_SQRT_2),
                    C64::new(0.0, -std::f64::consts::FRAC_1_SQRT_2),
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn ghz_reduction_invariance_all_bases() {
        // The headline check: for GHZ(3), C's measurement (any basis) does
        // not move the A-B joint distribution.
        let state = bell::ghz(3);
        for ba in bases() {
            for bb in bases() {
                for bc in bases() {
                    let dev = reduction_deviation(&state, &ba, &bb, &bc).unwrap();
                    assert!(dev < 1e-10, "deviation {dev}");
                }
            }
        }
    }

    #[test]
    fn w_state_reduction_invariance() {
        let state = bell::w_state(3);
        for bc in bases() {
            let dev =
                reduction_deviation(&state, &Basis1::angle(0.7), &Basis1::angle(1.9), &bc)
                    .unwrap();
            assert!(dev < 1e-10, "deviation {dev}");
        }
    }

    #[test]
    fn random_state_reduction_invariance() {
        // A deterministic "random" 3-qubit state.
        let mut amps = Vec::with_capacity(8);
        let mut seed = 12345u64;
        for _ in 0..8 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let re = ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let im = ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            amps.push(C64::new(re, im));
        }
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        let amps: Vec<C64> = amps.into_iter().map(|a| a / norm).collect();
        let state = StateVector::from_amplitudes(amps).unwrap();
        for bc in bases() {
            let dev =
                reduction_deviation(&state, &Basis1::angle(0.2), &Basis1::angle(2.5), &bc)
                    .unwrap();
            assert!(dev < 1e-10, "deviation {dev}");
        }
    }

    #[test]
    fn distributions_are_normalized() {
        let state = bell::ghz(3);
        let d = joint_ab_traced(&state, &Basis1::angle(0.4), &Basis1::angle(1.1)).unwrap();
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        let d2 = joint_ab_after_c_measures(
            &state,
            &Basis1::angle(0.4),
            &Basis1::angle(1.1),
            &Basis1::angle(0.9),
        )
        .unwrap();
        let total: f64 = d2.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ghz_traced_pair_is_classically_correlated() {
        // Tracing C from GHZ leaves (|00⟩⟨00| + |11⟩⟨11|)/2: perfect
        // Z-correlation, zero X-correlation (no entanglement left).
        let state = bell::ghz(3);
        let z = joint_ab_traced(&state, &Basis1::computational(), &Basis1::computational())
            .unwrap();
        assert!((z[0] - 0.5).abs() < 1e-10); // 00
        assert!((z[3] - 0.5).abs() < 1e-10); // 11
        let x = joint_ab_traced(
            &state,
            &Basis1::angle(std::f64::consts::FRAC_PI_4),
            &Basis1::angle(std::f64::consts::FRAC_PI_4),
        )
        .unwrap();
        for p in x {
            assert!((p - 0.25).abs() < 1e-10, "X-basis uniform, got {p}");
        }
    }

    #[test]
    fn unused_variable_check_project_party_errors() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!(project_party(&rho, 5, &Basis1::computational(), 0).is_err());
    }
}
