//! Empirical support for the paper's conjecture: no quantum advantage for
//! ECMP at all.
//!
//! For the `K = 2` active switches on `M = 2` paths family, the classical
//! bound follows from a *pigeonhole argument that binds any joint output
//! distribution* — quantum, super-quantum, anything:
//!
//! Let the N switches' (hypothetical) outputs be bits `b₁…b_N` drawn from
//! an arbitrary joint distribution (entanglement included: with no inputs
//! to condition on, the strategy is exactly one fixed joint distribution).
//! With `c₀` zeros and `c₁ = N − c₀` ones, the number of *agreeing pairs*
//! is `C(c₀,2) + C(c₁,2) ≥ m(N)`, minimized by the balanced split. The
//! collision probability over a uniformly random active pair is therefore
//! at least `m(N) / C(N,2)` — and a balanced deterministic assignment
//! achieves it. Quantum strategies can only match, never beat, classical.
//!
//! [`exhaustive_quantum_search`] additionally searches measurement-angle
//! space on GHZ / W / random tripartite states and confirms the bound
//! numerically.

use crate::model::{run_rounds, EcmpScenario};
use crate::strategy::{EntangledStateKind, GlobalEntangled};
use rand::Rng;

/// Minimum number of agreeing pairs among `n` binary outputs
/// (pigeonhole: minimized by the most balanced split).
fn min_agreeing_pairs(n: usize) -> usize {
    let c0 = n / 2;
    let c1 = n - c0;
    c0 * c0.saturating_sub(1) / 2 + c1 * c1.saturating_sub(1) / 2
}

/// The information-theoretic lower bound on collision probability for
/// `K = 2` active of `n` switches on 2 paths, valid for **any** joint
/// output distribution (quantum or classical).
pub fn pigeonhole_lower_bound(n_switches: usize) -> f64 {
    assert!(n_switches >= 2, "need two switches for a pair");
    let pairs = n_switches * (n_switches - 1) / 2;
    min_agreeing_pairs(n_switches) as f64 / pairs as f64
}

/// The best classical collision probability for 2 active of `n` on 2
/// paths — a balanced deterministic assignment meets the pigeonhole
/// bound, so the two coincide.
pub fn classical_optimum_two_active(n_switches: usize) -> f64 {
    pigeonhole_lower_bound(n_switches)
}

/// Result of the quantum strategy search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best (lowest) collision probability found over all searched
    /// quantum strategies.
    pub best_quantum: f64,
    /// The classical optimum for the same scenario.
    pub classical: f64,
    /// Number of strategies evaluated.
    pub evaluated: usize,
}

/// Searches GHZ- and W-state strategies with random and structured
/// measurement angles for the minimal (3, 2, 2) scenario, returning the
/// best quantum collision probability found. Monte-Carlo evaluated with
/// `rounds` rounds per candidate.
///
/// Candidates are evaluated on the shared worker pool; each gets its own
/// seed stream derived from a master seed drawn once from `rng`, so the
/// result depends only on the caller's RNG state, not the worker count.
pub fn exhaustive_quantum_search<R: Rng>(
    candidates: usize,
    rounds: usize,
    rng: &mut R,
) -> SearchResult {
    let scenario = EcmpScenario::minimal();
    let classical = classical_optimum_two_active(3);

    // Structured grid: evenly spread angle triples (the intuitive
    // "3-coloring" attempts), then random candidates.
    let tau = std::f64::consts::TAU;
    let mut pool: Vec<(Vec<f64>, EntangledStateKind)> = Vec::new();
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                let angles = vec![
                    i as f64 * tau / 8.0,
                    j as f64 * tau / 8.0,
                    k as f64 * tau / 8.0,
                ];
                for kind in [EntangledStateKind::Ghz, EntangledStateKind::W] {
                    pool.push((angles.clone(), kind));
                }
            }
        }
    }
    for _ in 0..candidates {
        let angles: Vec<f64> = (0..3).map(|_| rng.gen::<f64>() * tau).collect();
        let kind = if rng.gen() {
            EntangledStateKind::Ghz
        } else {
            EntangledStateKind::W
        };
        pool.push((angles, kind));
    }

    let master = rng.next_u64();
    let probs = runtime::par_sweep(master, &pool, |_, (angles, kind), rng| {
        let mut s = GlobalEntangled::new(*kind, angles.clone());
        run_rounds(scenario, &mut s, rounds, rng).collision_probability
    });
    let winner = probs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
        .map(|(i, _)| i)
        .expect("non-empty candidate pool");

    // The running minimum over noisy estimates is biased low (selection
    // on noise). Re-evaluate the winning candidate with 20× the rounds
    // for an honest estimate of the best quantum strategy found.
    let (angles, kind) = &pool[winner];
    let mut s = GlobalEntangled::new(*kind, angles.clone());
    let mut rng = runtime::stream_rng(master, pool.len() as u64);
    let best = run_rounds(scenario, &mut s, rounds * 20, &mut rng).collision_probability;

    SearchResult {
        best_quantum: best,
        classical,
        evaluated: pool.len(),
    }
}

/// Generalized search: 2 active of `n` switches on 2 paths, GHZ/W states
/// with random per-switch angles. Returns the best (honestly
/// re-evaluated) quantum collision probability found and the classical
/// optimum.
pub fn search_two_of_n<R: Rng>(
    n_switches: usize,
    candidates: usize,
    rounds: usize,
    rng: &mut R,
) -> SearchResult {
    let scenario = EcmpScenario::new(n_switches, 2, 2);
    let classical = classical_optimum_two_active(n_switches);
    let tau = std::f64::consts::TAU;
    let pool: Vec<(Vec<f64>, EntangledStateKind)> = (0..candidates)
        .map(|_| {
            let angles: Vec<f64> = (0..n_switches).map(|_| rng.gen::<f64>() * tau).collect();
            let kind = if rng.gen() {
                EntangledStateKind::Ghz
            } else {
                EntangledStateKind::W
            };
            (angles, kind)
        })
        .collect();

    let master = rng.next_u64();
    let probs = runtime::par_sweep(master, &pool, |_, (angles, kind), rng| {
        let mut s = GlobalEntangled::new(*kind, angles.clone());
        run_rounds(scenario, &mut s, rounds, rng).collision_probability
    });
    let winner = probs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
        .map(|(i, _)| i)
        .expect("non-empty candidate pool");
    let (angles, kind) = &pool[winner];
    let mut s = GlobalEntangled::new(*kind, angles.clone());
    let mut rng = runtime::stream_rng(master, pool.len() as u64);
    let best = run_rounds(scenario, &mut s, rounds * 20, &mut rng).collision_probability;

    SearchResult {
        best_quantum: best,
        classical,
        evaluated: pool.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pigeonhole_values() {
        // n = 3: balanced split (1,2) → 0 + 1 = 1 agreeing pair of 3.
        assert!((pigeonhole_lower_bound(3) - 1.0 / 3.0).abs() < 1e-12);
        // n = 4: (2,2) → 1 + 1 = 2 of 6.
        assert!((pigeonhole_lower_bound(4) - 1.0 / 3.0).abs() < 1e-12);
        // n = 5: (2,3) → 1 + 3 = 4 of 10.
        assert!((pigeonhole_lower_bound(5) - 0.4).abs() < 1e-12);
        // n = 2: (1,1) → 0 agreeing pairs: collision avoidable entirely.
        assert_eq!(pigeonhole_lower_bound(2), 0.0);
    }

    #[test]
    fn quantum_search_never_beats_classical() {
        // The paper's conjecture, checked over 128+ grid and 30 random
        // strategies: no quantum strategy undercuts the classical optimum
        // (up to Monte-Carlo noise).
        let mut rng = StdRng::seed_from_u64(1);
        let result = exhaustive_quantum_search(30, 4_000, &mut rng);
        assert!(result.evaluated > 128);
        assert!(
            result.best_quantum >= result.classical - 0.02,
            "quantum {} undercut classical {}",
            result.best_quantum,
            result.classical
        );
    }

    #[test]
    fn two_of_four_search_never_beats_classical() {
        // The larger instance of the conjecture: 4 switches sharing
        // 4-party entanglement, 2 active. Classical optimum (= pigeonhole
        // floor) is 1/3 again.
        let mut rng = StdRng::seed_from_u64(7);
        let result = search_two_of_n(4, 25, 3_000, &mut rng);
        assert!((result.classical - 1.0 / 3.0).abs() < 1e-12);
        assert!(
            result.best_quantum >= result.classical - 0.02,
            "quantum {} undercut classical {}",
            result.best_quantum,
            result.classical
        );
    }

    #[test]
    fn some_quantum_strategy_matches_classical() {
        // The bound is attainable: the best quantum candidate should get
        // close to 1/3 (e.g. GHZ with well-spread angles approximates the
        // balanced assignment mixture).
        let mut rng = StdRng::seed_from_u64(2);
        let result = exhaustive_quantum_search(50, 4_000, &mut rng);
        assert!(
            result.best_quantum < result.classical + 0.1,
            "best quantum {} far above classical {}",
            result.best_quantum,
            result.classical
        );
    }
}
