//! Complex `f64` scalar type.
//!
//! The quantum-crate ecosystem is thin and `num-complex` would be our only
//! use of the `num` family, so we implement the small amount of complex
//! arithmetic the workspace needs directly. The type is `Copy`, 16 bytes,
//! and deliberately mirrors `num_complex::Complex64`'s field names so a
//! future migration would be mechanical.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²` — the probability weight of an amplitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns non-finite components if `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// True if `|self - other| <= tol`.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self - other).abs() <= tol
    }

    /// Complex square root (principal branch).
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        C64::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w ≡ z·w⁻¹ by definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert!((z * z.recip()).approx_eq(C64::ONE, TOL));
        assert_eq!(-(-z), z);
        assert_eq!(z - z, C64::ZERO);
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), C64::new(3.0, 4.0));
        // z * conj(z) = |z|²
        assert!((z * z.conj()).approx_eq(C64::real(25.0), TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C64::I * C64::I).approx_eq(C64::real(-1.0), TOL));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < TOL);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            assert!((C64::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn euler_identity() {
        let z = C64::cis(std::f64::consts::PI);
        assert!(z.approx_eq(C64::real(-1.0), TOL));
    }

    #[test]
    fn division() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        let q = a / b;
        assert!((q * b).approx_eq(a, TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-1.0, 0.0), (1.0, 1.0), (-3.0, 2.5)] {
            let z = C64::new(re, im);
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-10), "sqrt failed for {z}");
        }
    }

    #[test]
    fn exp_of_zero_is_one() {
        assert!(C64::ZERO.exp().approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn sum_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(total, C64::new(6.0, 4.0));
    }

    #[test]
    fn mixed_real_ops() {
        let z = C64::new(1.0, 1.0);
        assert_eq!(z * 2.0, C64::new(2.0, 2.0));
        assert_eq!(2.0 * z, C64::new(2.0, 2.0));
        assert_eq!(z / 2.0, C64::new(0.5, 0.5));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
