//! Projections onto the PSD cone and the elliptope.
//!
//! These are the geometric primitives behind the projected-gradient SDP
//! solver used to cross-check XOR-game quantum values
//! (`games::xor::quantum_value_pgd`).

use crate::eigen::eigh;
use crate::error::MathError;
use crate::rmatrix::RMatrix;

/// Projects a symmetric matrix onto the positive-semidefinite cone in
/// Frobenius norm: eigendecompose and clamp negative eigenvalues to zero.
///
/// # Errors
/// Propagates [`eigh`] errors (non-square or asymmetric input).
pub fn project_psd(a: &RMatrix) -> Result<RMatrix, MathError> {
    let n = a.rows();
    let dec = eigh(a)?;
    let mut out = RMatrix::zeros(n, n);
    for k in 0..n {
        let lam = dec.values[k];
        if lam <= 0.0 {
            continue;
        }
        let v = dec.vectors.row(k);
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] += lam * v[i] * v[j];
            }
        }
    }
    Ok(out)
}

/// Approximately projects a symmetric matrix onto the *elliptope* — the set
/// of PSD matrices with unit diagonal (correlation matrices / Gram matrices
/// of unit vectors).
///
/// Uses alternating projection between the PSD cone ([`project_psd`]) and
/// the unit-diagonal affine constraint, followed by a congruence rescale
/// `D^{-1/2} G D^{-1/2}` that restores exact unit diagonal while preserving
/// positive semidefiniteness. Alternating projection between a convex cone
/// and an affine set converges to a point in the intersection; the final
/// rescale guarantees the diagonal constraint holds exactly after finitely
/// many rounds.
///
/// # Errors
/// Propagates [`eigh`] errors.
pub fn project_elliptope(a: &RMatrix, rounds: usize) -> Result<RMatrix, MathError> {
    let n = a.rows();
    let mut g = a.clone();
    g.symmetrize();
    for _ in 0..rounds {
        g = project_psd(&g)?;
        for i in 0..n {
            g[(i, i)] = 1.0;
        }
    }
    g = project_psd(&g)?;
    // Congruence rescale: exact unit diagonal, stays PSD.
    let mut d = vec![0.0; n];
    for (i, di) in d.iter_mut().enumerate() {
        // Guard against a zero diagonal (can only happen if the input row
        // was entirely zero); fall back to the identity direction.
        let gii = g[(i, i)];
        if gii <= 1e-12 {
            g[(i, i)] = 1.0;
            for j in 0..n {
                if j != i {
                    g[(i, j)] = 0.0;
                    g[(j, i)] = 0.0;
                }
            }
            *di = 1.0;
        } else {
            *di = gii.sqrt();
        }
    }
    for i in 0..n {
        for j in 0..n {
            g[(i, j)] /= d[i] * d[j];
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::is_positive_semidefinite;

    #[test]
    fn project_psd_fixes_negative_eigenvalue() {
        // [[1, 2], [2, 1]] has eigenvalues -1, 3.
        let a = RMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        let p = project_psd(&a).unwrap();
        assert!(is_positive_semidefinite(&p, 1e-9).unwrap());
        // The projection keeps only the λ=3 component: 1.5 * [[1,1],[1,1]].
        assert!((p[(0, 0)] - 1.5).abs() < 1e-9);
        assert!((p[(0, 1)] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn project_psd_identity_on_psd_input() {
        let a = RMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let p = project_psd(&a).unwrap();
        assert!(p.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn elliptope_projection_feasible() {
        let a = RMatrix::from_vec(
            3,
            3,
            vec![5.0, 0.9, -0.9, 0.9, 0.1, 0.9, -0.9, 0.9, 1.0],
        )
        .unwrap();
        let g = project_elliptope(&a, 20).unwrap();
        assert!(is_positive_semidefinite(&g, 1e-7).unwrap());
        for i in 0..3 {
            assert!((g[(i, i)] - 1.0).abs() < 1e-9, "diag {i} = {}", g[(i, i)]);
        }
        for i in 0..3 {
            for j in 0..3 {
                assert!(g[(i, j)].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn elliptope_projection_fixed_point() {
        // A valid correlation matrix should be (nearly) unchanged.
        let a = RMatrix::from_vec(
            2,
            2,
            vec![1.0, 0.5, 0.5, 1.0],
        )
        .unwrap();
        let g = project_elliptope(&a, 10).unwrap();
        assert!(g.max_abs_diff(&a) < 1e-8);
    }
}
