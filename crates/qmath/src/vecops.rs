//! Free functions over real vectors (`&[f64]`).
//!
//! The XOR-game solver works with bundles of unit vectors; representing them
//! as plain slices keeps that code allocation-light and obvious.

use crate::complex::C64;

/// Dot product of two equal-length real vectors.
///
/// # Panics
/// Panics if the lengths differ (this is a programming error, not a
/// recoverable condition).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Normalizes `a` in place to unit Euclidean norm.
///
/// Returns `false` (leaving `a` untouched) if its norm is below `1e-300`,
/// i.e. effectively the zero vector, which has no direction.
pub fn normalize(a: &mut [f64]) -> bool {
    let n = norm(a);
    if n < 1e-300 {
        return false;
    }
    for x in a.iter_mut() {
        *x /= n;
    }
    true
}

/// `y += alpha * x` (BLAS `axpy`).
///
/// # Panics
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales `a` in place by `alpha`.
pub fn scale(alpha: f64, a: &mut [f64]) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Hermitian inner product `⟨a|b⟩ = Σ conj(aᵢ)·bᵢ` of complex vectors.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn cdot(a: &[C64], b: &[C64]) -> C64 {
    assert_eq!(a.len(), b.len(), "cdot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum()
}

/// Euclidean norm of a complex vector.
#[inline]
pub fn cnorm(a: &[C64]) -> f64 {
    a.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Normalizes a complex vector in place; returns `false` for the zero vector.
pub fn cnormalize(a: &mut [C64]) -> bool {
    let n = cnorm(a);
    if n < 1e-300 {
        return false;
    }
    for z in a.iter_mut() {
        *z = *z / n;
    }
    true
}

/// Dense mat-vec `out = M·x` over a row-major flat matrix (`rows × cols`).
///
/// The flat-buffer XOR-game solver and its spectral warm start run their
/// hot loops over `&[f64]` buffers; this kernel (and [`gemv_t`]) keeps
/// those loops allocation-free.
///
/// # Panics
/// Panics if `m.len() != rows * cols`, `x.len() != cols`, or
/// `out.len() != rows`.
pub fn gemv(m: &[f64], rows: usize, cols: usize, x: &[f64], out: &mut [f64]) {
    assert_eq!(m.len(), rows * cols, "gemv: matrix size mismatch");
    assert_eq!(x.len(), cols, "gemv: input length mismatch");
    assert_eq!(out.len(), rows, "gemv: output length mismatch");
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot(&m[r * cols..(r + 1) * cols], x);
    }
}

/// Dense transposed mat-vec `out = Mᵀ·x` over a row-major flat matrix
/// (`rows × cols`), accumulated row-by-row so memory access stays
/// sequential in `m`.
///
/// # Panics
/// Panics if `m.len() != rows * cols`, `x.len() != rows`, or
/// `out.len() != cols`.
pub fn gemv_t(m: &[f64], rows: usize, cols: usize, x: &[f64], out: &mut [f64]) {
    assert_eq!(m.len(), rows * cols, "gemv_t: matrix size mismatch");
    assert_eq!(x.len(), rows, "gemv_t: input length mismatch");
    assert_eq!(out.len(), cols, "gemv_t: output length mismatch");
    out.fill(0.0);
    for (r, &xr) in x.iter().enumerate() {
        axpy(xr, &m[r * cols..(r + 1) * cols], out);
    }
}

/// `out = alpha · x` (overwrite, no accumulation) — the first term of a
/// weighted-sum loop, saving the `fill(0.0)` + `axpy` pair.
///
/// # Panics
/// Panics if the lengths differ.
pub fn scale_into(alpha: f64, x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), out.len(), "scale_into: length mismatch");
    for (o, xi) in out.iter_mut().zip(x) {
        *o = alpha * xi;
    }
}

/// Maximum absolute difference between two equal-length vectors.
///
/// # Panics
/// Panics if the lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Arithmetic mean; errors on empty input are a caller bug so this panics.
pub fn mean(a: &[f64]) -> f64 {
    assert!(!a.is_empty(), "mean of empty slice");
    a.iter().sum::<f64>() / a.len() as f64
}

/// Population variance.
pub fn variance(a: &[f64]) -> f64 {
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn normalize_unit() {
        let mut v = vec![3.0, 4.0];
        assert!(normalize(&mut v));
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        assert!((v[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_fails() {
        let mut v = vec![0.0, 0.0];
        assert!(!normalize(&mut v));
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn gemv_matches_manual() {
        // M = [[1, 2], [3, 4], [5, 6]] (3×2), x = [1, -1].
        let m = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = [0.0; 3];
        gemv(&m, 3, 2, &[1.0, -1.0], &mut out);
        assert_eq!(out, [-1.0, -1.0, -1.0]);
    }

    #[test]
    fn gemv_t_matches_transpose() {
        let m = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = [0.0; 2];
        gemv_t(&m, 3, 2, &[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, [9.0, 12.0]);
    }

    #[test]
    fn scale_into_overwrites() {
        let mut out = [7.0, 7.0];
        scale_into(2.0, &[1.0, -3.0], &mut out);
        assert_eq!(out, [2.0, -6.0]);
    }

    #[test]
    fn cdot_is_conjugate_linear() {
        let a = vec![C64::I, C64::ONE];
        let b = vec![C64::I, C64::ZERO];
        // ⟨a|b⟩ = conj(i)*i + conj(1)*0 = 1
        assert!(cdot(&a, &b).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn cnormalize_unitizes() {
        let mut v = vec![C64::new(3.0, 0.0), C64::new(0.0, 4.0)];
        assert!(cnormalize(&mut v));
        assert!((cnorm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_variance() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&a), 2.5);
        assert!((variance(&a) - 1.25).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_cauchy_schwarz(pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..8)) {
            let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            let lhs = dot(&a, &b).abs();
            let rhs = norm(&a) * norm(&b);
            prop_assert!(lhs <= rhs + 1e-9);
        }

        #[test]
        fn prop_normalize_direction_preserved(mut v in proptest::collection::vec(-10.0f64..10.0, 2..8)) {
            let orig = v.clone();
            if normalize(&mut v) {
                // v is parallel to orig: cross-ratio check via dot
                let d = dot(&orig, &v);
                prop_assert!((d - norm(&orig)).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_cnorm_invariant_under_global_phase(
            re in proptest::collection::vec(-5.0f64..5.0, 1..6),
            theta in 0.0f64..std::f64::consts::TAU)
        {
            let v: Vec<C64> = re.iter().map(|&r| C64::new(r, -r / 2.0)).collect();
            let phase = C64::cis(theta);
            let w: Vec<C64> = v.iter().map(|&z| z * phase).collect();
            prop_assert!((cnorm(&v) - cnorm(&w)).abs() < 1e-9);
        }
    }
}
