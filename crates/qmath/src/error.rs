//! Error type shared by all `qmath` operations.

use std::fmt;

/// Errors produced by linear-algebra routines.
///
/// All routines in this crate are total over well-formed inputs; errors
/// signal contract violations (dimension mismatches) or mathematical
/// infeasibility (e.g. Cholesky of an indefinite matrix), never internal
/// numerical surprises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MathError {
    /// Operand dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand as (rows, cols).
        lhs: (usize, usize),
        /// Dimensions of the right operand as (rows, cols).
        rhs: (usize, usize),
    },
    /// The matrix is not square but the operation requires it.
    NotSquare {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Actual dimensions as (rows, cols).
        dims: (usize, usize),
    },
    /// The matrix is not symmetric/Hermitian within tolerance.
    NotSymmetric {
        /// Maximum observed asymmetry `|A[i][j] - A[j][i]|`.
        max_asymmetry: u64,
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// The pivot index at which a non-positive diagonal was found.
        pivot: usize,
    },
    /// The iterative algorithm did not converge within its iteration budget.
    NoConvergence {
        /// Human-readable description of the algorithm.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An input was empty where a non-empty one is required.
    Empty {
        /// Human-readable description of the operation that failed.
        op: &'static str,
    },
}

impl MathError {
    /// Convenience constructor for [`MathError::NotSymmetric`] from a float
    /// asymmetry magnitude (stored as bits so the error stays `Eq`).
    pub fn not_symmetric(max_asymmetry: f64) -> Self {
        MathError::NotSymmetric {
            max_asymmetry: max_asymmetry.to_bits(),
        }
    }
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: ({}x{}) vs ({}x{})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MathError::NotSquare { op, dims } => {
                write!(f, "{op} requires a square matrix, got {}x{}", dims.0, dims.1)
            }
            MathError::NotSymmetric { max_asymmetry } => write!(
                f,
                "matrix is not symmetric/Hermitian (max asymmetry {})",
                f64::from_bits(*max_asymmetry)
            ),
            MathError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            MathError::NoConvergence { algorithm, iterations } => {
                write!(f, "{algorithm} did not converge after {iterations} iterations")
            }
            MathError::Empty { op } => write!(f, "{op} requires a non-empty input"),
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MathError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));

        let e = MathError::not_symmetric(0.5);
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            MathError::Empty { op: "mean" },
            MathError::Empty { op: "mean" }
        );
        assert_ne!(
            MathError::NotPositiveDefinite { pivot: 0 },
            MathError::NotPositiveDefinite { pivot: 1 }
        );
    }
}
