//! Statistical acceptance-test helpers.
//!
//! Stochastic tests that assert "the win rate is about 0.8536" with a
//! hand-tuned tolerance rot in two ways: the tolerance is either so loose
//! it hides regressions or so tight it flakes when someone changes a
//! sample count. This module makes every stochastic assertion carry its
//! own statistics: an explicit confidence level, the sample size, and an
//! interval derived from them — never a bare magic number.
//!
//! Two interval constructions are offered:
//!
//! - [`wilson_at`]: the Wilson score interval at an arbitrary confidence,
//!   the right default for binomial proportions (well-behaved near 0/1).
//! - [`hoeffding_epsilon`]: a distribution-free bound from Hoeffding's
//!   inequality, `ε = sqrt(ln(2/α) / 2n)` — looser, but valid for any
//!   bounded statistic, and invertible via [`hoeffding_samples`] to plan
//!   a sample budget up front.
//!
//! The [`crate::assert_prob_in!`] macro ties them together: it prints the
//! full accounting (observed, expected, bound, `n`, confidence) before
//! asserting, so `make test-stat` documents the statistical power of the
//! suite as a side effect of running it.

use std::fmt;

/// Two-sided z-value for a given confidence level, via the Acklam
/// rational approximation of the inverse normal CDF (|relative error|
/// < 1.15e-9 — far below statistical noise at any feasible sample size).
///
/// # Panics
/// Panics unless `0 < confidence < 1`.
pub fn z_value(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    // Two-sided: put α/2 in each tail.
    inverse_normal_cdf(0.5 + confidence / 2.0)
}

/// Acklam's inverse normal CDF approximation.
#[allow(clippy::excessive_precision)] // coefficients quoted verbatim from Acklam
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// Wilson score interval for `successes / trials` at an arbitrary
/// two-sided confidence level (generalizes [`crate::stats::wilson`],
/// which is pinned at 95%).
///
/// # Panics
/// Panics if `trials == 0`, `successes > trials`, or the confidence is
/// not in `(0, 1)`.
pub fn wilson_at(successes: u64, trials: u64, confidence: f64) -> (f64, f64) {
    assert!(trials > 0, "no trials");
    assert!(successes <= trials, "more successes than trials");
    let z = z_value(confidence);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Hoeffding deviation bound: with probability ≥ `confidence`, the
/// empirical mean of `n` i.i.d. `[0, 1]`-bounded samples is within the
/// returned `ε` of its expectation (`ε = sqrt(ln(2/(1−conf)) / 2n)`).
///
/// # Panics
/// Panics if `n == 0` or the confidence is not in `(0, 1)`.
pub fn hoeffding_epsilon(n: u64, confidence: f64) -> f64 {
    assert!(n > 0, "no samples");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    ((2.0 / (1.0 - confidence)).ln() / (2.0 * n as f64)).sqrt()
}

/// Minimum sample count for the Hoeffding bound to reach deviation
/// `epsilon` at `confidence` — the planning inverse of
/// [`hoeffding_epsilon`].
///
/// # Panics
/// Panics unless `epsilon > 0` and the confidence is in `(0, 1)`.
pub fn hoeffding_samples(epsilon: f64, confidence: f64) -> u64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    ((2.0 / (1.0 - confidence)).ln() / (2.0 * epsilon * epsilon)).ceil() as u64
}

/// The complete accounting of one stochastic acceptance check: what was
/// observed, what was expected, the interval that decides, and the
/// sample size and confidence that justify it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundCheck {
    /// Observed proportion.
    pub observed: f64,
    /// Theoretical expectation being tested.
    pub expected: f64,
    /// Interval lower edge.
    pub lo: f64,
    /// Interval upper edge.
    pub hi: f64,
    /// Sample size behind the interval.
    pub n: u64,
    /// Two-sided confidence level of the interval.
    pub confidence: f64,
    /// Whether `expected ∈ [lo, hi]`.
    pub pass: bool,
}

impl BoundCheck {
    /// Wilson-interval check: does `expected` fall inside the Wilson
    /// interval of `successes / trials` at `confidence`?
    ///
    /// # Panics
    /// Propagates the [`wilson_at`] panics on degenerate inputs.
    pub fn wilson(successes: u64, trials: u64, expected: f64, confidence: f64) -> Self {
        let (lo, hi) = wilson_at(successes, trials, confidence);
        BoundCheck {
            observed: successes as f64 / trials as f64,
            expected,
            lo,
            hi,
            n: trials,
            confidence,
            pass: (lo..=hi).contains(&expected),
        }
    }

    /// Hoeffding check: is `|observed − expected| ≤ ε(n, confidence)`?
    /// Distribution-free; use when the statistic is bounded but not a
    /// plain binomial proportion.
    ///
    /// # Panics
    /// Propagates the [`hoeffding_epsilon`] panics on degenerate inputs.
    pub fn hoeffding(observed: f64, n: u64, expected: f64, confidence: f64) -> Self {
        let eps = hoeffding_epsilon(n, confidence);
        BoundCheck {
            observed,
            expected,
            lo: observed - eps,
            hi: observed + eps,
            n,
            confidence,
            pass: (observed - expected).abs() <= eps,
        }
    }
}

impl fmt::Display for BoundCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} observed {:.5} vs expected {:.5} in [{:.5}, {:.5}] (n = {}, confidence = {}%)",
            if self.pass { "PASS" } else { "FAIL" },
            self.observed,
            self.expected,
            self.lo,
            self.hi,
            self.n,
            self.confidence * 100.0,
        )
    }
}

/// Asserts a binomial observation is statistically consistent with a
/// theoretical probability, printing the full sample-size/confidence
/// accounting either way:
///
/// ```
/// # use qmath::assert_prob_in;
/// // 8530 CHSH wins in 10⁴ rounds vs the Tsirelson-bound win rate.
/// assert_prob_in!(8530, 10_000, 0.8536, conf = 0.999);
/// ```
///
/// Panics (like `assert!`) when the expected value falls outside the
/// Wilson interval of the observation at the stated confidence.
#[macro_export]
macro_rules! assert_prob_in {
    ($successes:expr, $trials:expr, $expected:expr, conf = $conf:expr) => {{
        let check = $crate::stattest::BoundCheck::wilson(
            ($successes) as u64,
            ($trials) as u64,
            $expected,
            $conf,
        );
        println!("stattest: {check}");
        assert!(
            check.pass,
            "stochastic acceptance failed: {check} [{}:{}]",
            file!(),
            line!()
        );
        check
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_values_match_tables() {
        // Standard normal quantiles to 4 decimal places.
        assert!((z_value(0.95) - 1.9600).abs() < 1e-3, "{}", z_value(0.95));
        assert!((z_value(0.99) - 2.5758).abs() < 1e-3, "{}", z_value(0.99));
        assert!((z_value(0.999) - 3.2905).abs() < 1e-3, "{}", z_value(0.999));
    }

    #[test]
    fn wilson_at_95_matches_fixed_wilson() {
        let p = crate::stats::wilson(850, 1000);
        let (lo, hi) = wilson_at(850, 1000, 0.95);
        assert!((lo - p.lo).abs() < 1e-4, "{lo} vs {}", p.lo);
        assert!((hi - p.hi).abs() < 1e-4, "{hi} vs {}", p.hi);
    }

    #[test]
    fn higher_confidence_widens_the_interval() {
        let (lo95, hi95) = wilson_at(850, 1000, 0.95);
        let (lo999, hi999) = wilson_at(850, 1000, 0.999);
        assert!(lo999 < lo95 && hi95 < hi999);
    }

    #[test]
    fn hoeffding_roundtrip() {
        let conf = 0.999;
        let eps = 0.01;
        let n = hoeffding_samples(eps, conf);
        // The planned n achieves the target ε; one fewer does not.
        assert!(hoeffding_epsilon(n, conf) <= eps);
        assert!(hoeffding_epsilon(n - 1, conf) > eps);
    }

    #[test]
    fn bound_check_pass_and_fail() {
        let ok = BoundCheck::wilson(8536, 10_000, 0.8536, 0.999);
        assert!(ok.pass);
        let bad = BoundCheck::wilson(7500, 10_000, 0.8536, 0.999);
        assert!(!bad.pass);
        let s = bad.to_string();
        assert!(s.contains("FAIL") && s.contains("n = 10000") && s.contains("99.9%"), "{s}");
    }

    #[test]
    fn hoeffding_check_is_distribution_free_width() {
        let c = BoundCheck::hoeffding(0.85, 10_000, 0.8536, 0.999);
        assert!(c.pass);
        assert!((c.hi - c.lo) / 2.0 - hoeffding_epsilon(10_000, 0.999) < 1e-12);
    }

    #[test]
    fn macro_passes_and_returns_the_check() {
        let check = assert_prob_in!(8536, 10_000, 0.8536, conf = 0.999);
        assert_eq!(check.n, 10_000);
    }

    #[test]
    #[should_panic(expected = "stochastic acceptance failed")]
    fn macro_fails_loudly() {
        assert_prob_in!(7500, 10_000, 0.8536, conf = 0.999);
    }
}
