//! Eigendecomposition of real-symmetric and Hermitian matrices.
//!
//! Uses the cyclic Jacobi rotation method: numerically very robust, simple
//! to verify, and more than fast enough for the ≤ few-hundred-dimensional
//! matrices this workspace produces (density matrices on ≤ 8 qubits, Gram
//! matrices of XOR games). Hermitian matrices are handled by the standard
//! embedding of an n×n Hermitian `H = A + iB` into the 2n×2n real symmetric
//! matrix `[[A, -B], [B, A]]`, whose spectrum is that of `H` with every
//! eigenvalue doubled.

use crate::cmatrix::CMatrix;
use crate::complex::C64;
use crate::error::MathError;
use crate::rmatrix::RMatrix;

/// Result of an eigendecomposition: `A = V diag(λ) Vᵀ`.
///
/// Eigenvalues are sorted ascending; `vectors.row(k)` — note: rows, not
/// columns — is the unit eigenvector for `values[k]`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Eigenvectors as rows: `vectors.row(k)` pairs with `values[k]`.
    pub vectors: RMatrix,
}

/// Maximum number of full Jacobi sweeps before declaring non-convergence.
/// Jacobi converges quadratically; well-conditioned matrices need < 15
/// sweeps even at n = 200, so 100 indicates pathological input (NaN/Inf).
const MAX_SWEEPS: usize = 100;

/// Eigendecomposition of a real symmetric matrix by cyclic Jacobi rotations.
///
/// # Errors
/// - [`MathError::NotSquare`] if `a` is not square.
/// - [`MathError::NotSymmetric`] if `a` deviates from symmetry by more
///   than `1e-8` (relative to its Frobenius norm scale).
/// - [`MathError::NoConvergence`] if the sweep budget is exhausted
///   (only possible for non-finite input).
pub fn eigh(a: &RMatrix) -> Result<EigenDecomposition, MathError> {
    if !a.is_square() {
        return Err(MathError::NotSquare {
            op: "eigh",
            dims: (a.rows(), a.cols()),
        });
    }
    let n = a.rows();
    let scale = a.frobenius_norm().max(1.0);
    let asym = a.max_asymmetry();
    if asym > 1e-8 * scale {
        return Err(MathError::not_symmetric(asym));
    }
    if n == 0 {
        return Ok(EigenDecomposition {
            values: vec![],
            vectors: RMatrix::zeros(0, 0),
        });
    }

    // Work on a copy; accumulate rotations in v (as columns initially).
    let mut m = a.clone();
    m.symmetrize();
    let mut v = RMatrix::identity(n);

    for sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius norm² — convergence criterion.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += 2.0 * m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * scale {
            return Ok(finish(m, v, n));
        }
        if !off.is_finite() {
            return Err(MathError::NoConvergence {
                algorithm: "jacobi (non-finite input)",
                iterations: sweep,
            });
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                // Compute the Jacobi rotation that zeroes m[p][q].
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation: rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvector rotation (columns of v).
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(MathError::NoConvergence {
        algorithm: "jacobi",
        iterations: MAX_SWEEPS,
    })
}

/// Sorts eigenpairs ascending and converts column-eigenvectors to rows.
fn finish(m: RMatrix, v: RMatrix, n: usize) -> EigenDecomposition {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].partial_cmp(&m[(j, j)]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = RMatrix::from_fn(n, n, |row, col| v[(col, order[row])]);
    EigenDecomposition { values, vectors }
}

/// Result of a Hermitian eigendecomposition.
#[derive(Debug, Clone)]
pub struct HermitianEigen {
    /// Eigenvalues in ascending order (real for Hermitian matrices).
    pub values: Vec<f64>,
    /// Unit eigenvectors; `vectors[k]` pairs with `values[k]`.
    pub vectors: Vec<Vec<C64>>,
}

/// Eigendecomposition of a Hermitian complex matrix.
///
/// Embeds `H = A + iB` into the real symmetric `[[A, -B], [B, A]]` and
/// deduplicates the doubled spectrum. The real eigenvector `(x, y)` maps to
/// the complex eigenvector `x + iy`; for a doubled eigenvalue the two real
/// eigenvectors map to complex vectors equal up to phase, so we keep every
/// other one after re-orthonormalization within degenerate clusters.
///
/// # Errors
/// Same conditions as [`eigh`], plus [`MathError::NotSymmetric`] if the
/// input is not Hermitian.
pub fn eigh_hermitian(h: &CMatrix) -> Result<HermitianEigen, MathError> {
    if !h.is_square() {
        return Err(MathError::NotSquare {
            op: "eigh_hermitian",
            dims: (h.rows(), h.cols()),
        });
    }
    let n = h.rows();
    let scale = h.frobenius_norm().max(1.0);
    let nonherm = h.max_nonhermiticity();
    if nonherm > 1e-8 * scale {
        return Err(MathError::not_symmetric(nonherm));
    }

    // Real embedding: M = [[A, -B], [B, A]], where H = A + iB.
    let m = RMatrix::from_fn(2 * n, 2 * n, |i, j| {
        let (bi, bj) = (i % n, j % n);
        let z = h[(bi, bj)];
        match (i < n, j < n) {
            (true, true) => z.re,
            (true, false) => -z.im,
            (false, true) => z.im,
            (false, false) => z.re,
        }
    });
    let dec = eigh(&m)?;

    // The 2n eigenvalues come in duplicated pairs. Walk ascending and take
    // one complex eigenvector per pair, Gram-Schmidt-orthonormalizing within
    // clusters of (numerically) equal eigenvalues to handle degeneracy.
    let mut values = Vec::with_capacity(n);
    let mut vectors: Vec<Vec<C64>> = Vec::with_capacity(n);
    let tol = 1e-7 * scale;
    for k in 0..2 * n {
        if values.len() == n {
            break;
        }
        let lam = dec.values[k];
        let row = dec.vectors.row(k);
        let mut cv: Vec<C64> = (0..n).map(|i| C64::new(row[i], row[n + i])).collect();
        // Project out previously kept eigenvectors with the same eigenvalue.
        for (idx, prev) in values.iter().enumerate() {
            if (lam - prev).abs() <= tol {
                let overlap = crate::vecops::cdot(&vectors[idx], &cv);
                for (c, p) in cv.iter_mut().zip(&vectors[idx]) {
                    *c -= overlap * *p;
                }
            }
        }
        // After projection, the duplicate partner of an already-kept
        // eigenvector collapses to numerical noise — require a genuinely
        // non-trivial residual before keeping it.
        if crate::vecops::cnorm(&cv) > 1e-6 {
            crate::vecops::cnormalize(&mut cv);
            values.push(lam);
            vectors.push(cv);
        }
    }
    debug_assert_eq!(values.len(), n, "duplicated spectrum extraction failed");
    Ok(HermitianEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;
    use proptest::prelude::*;

    fn reconstruct(dec: &EigenDecomposition, n: usize) -> RMatrix {
        let mut out = RMatrix::zeros(n, n);
        for k in 0..n {
            let v = dec.vectors.row(k);
            for i in 0..n {
                for j in 0..n {
                    out[(i, j)] += dec.values[k] * v[i] * v[j];
                }
            }
        }
        out
    }

    #[test]
    fn eigh_diagonal_matrix() {
        let a = RMatrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0])
            .unwrap();
        let dec = eigh(&a).unwrap();
        assert_eq!(dec.values.len(), 3);
        assert!((dec.values[0] - 1.0).abs() < 1e-12);
        assert!((dec.values[1] - 2.0).abs() < 1e-12);
        assert!((dec.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eigh_2x2_known() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = RMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let dec = eigh(&a).unwrap();
        assert!((dec.values[0] - 1.0).abs() < 1e-10);
        assert!((dec.values[1] - 3.0).abs() < 1e-10);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v = dec.vectors.row(1);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10);
    }

    #[test]
    fn eigh_reconstruction() {
        let a = RMatrix::from_vec(
            4,
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, 1.0, 3.0, 0.2, 0.1, 0.5, 0.2, 2.0, 0.3, 0.0, 0.1, 0.3, 1.0,
            ],
        )
        .unwrap();
        let dec = eigh(&a).unwrap();
        let r = reconstruct(&dec, 4);
        assert!(r.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigh_eigenvectors_orthonormal() {
        let a = RMatrix::from_fn(5, 5, |i, j| 1.0 / (1.0 + (i + j) as f64));
        let dec = eigh(&a).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let d = vecops::dot(dec.vectors.row(i), dec.vectors.row(j));
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-9, "({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn eigh_rejects_asymmetric() {
        let a = RMatrix::from_vec(2, 2, vec![1.0, 5.0, 0.0, 1.0]).unwrap();
        assert!(matches!(eigh(&a), Err(MathError::NotSymmetric { .. })));
    }

    #[test]
    fn eigh_rejects_nonsquare() {
        let a = RMatrix::zeros(2, 3);
        assert!(matches!(eigh(&a), Err(MathError::NotSquare { .. })));
    }

    #[test]
    fn hermitian_pauli_y_spectrum() {
        // Y has eigenvalues ±1.
        let y = CMatrix::from_vec(2, 2, vec![C64::ZERO, -C64::I, C64::I, C64::ZERO]).unwrap();
        let dec = eigh_hermitian(&y).unwrap();
        assert!((dec.values[0] + 1.0).abs() < 1e-10);
        assert!((dec.values[1] - 1.0).abs() < 1e-10);
        // Check Y v = λ v.
        for k in 0..2 {
            let v = &dec.vectors[k];
            let yv = y.matvec(v).unwrap();
            for i in 0..2 {
                assert!((yv[i] - v[i] * dec.values[k]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hermitian_eigenvectors_orthonormal_degenerate() {
        // Identity: fully degenerate spectrum — hardest case for the
        // duplicated-pair extraction.
        let i4 = CMatrix::identity(4);
        let dec = eigh_hermitian(&i4).unwrap();
        assert_eq!(dec.values.len(), 4);
        for k in 0..4 {
            assert!((dec.values[k] - 1.0).abs() < 1e-10);
            for l in 0..4 {
                let d = vecops::cdot(&dec.vectors[k], &dec.vectors[l]);
                let expected = if k == l { C64::ONE } else { C64::ZERO };
                assert!(d.approx_eq(expected, 1e-8), "({k},{l}): {d}");
            }
        }
    }

    #[test]
    fn hermitian_random_reconstruction() {
        // Deterministic pseudo-random Hermitian matrix.
        let n = 4;
        let mut h = CMatrix::zeros(n, n);
        let mut seed = 1u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            h[(i, i)] = C64::real(next());
            for j in (i + 1)..n {
                let z = C64::new(next(), next());
                h[(i, j)] = z;
                h[(j, i)] = z.conj();
            }
        }
        let dec = eigh_hermitian(&h).unwrap();
        // Reconstruct Σ λ |v⟩⟨v|.
        let mut r = CMatrix::zeros(n, n);
        for k in 0..n {
            let p = CMatrix::outer(&dec.vectors[k], &dec.vectors[k]);
            r = &r + &p.scaled(C64::real(dec.values[k]));
        }
        assert!(r.max_abs_diff(&h) < 1e-8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_eigh_trace_equals_eigenvalue_sum(
            vals in proptest::collection::vec(-5.0f64..5.0, 16))
        {
            let mut a = RMatrix::from_vec(4, 4, vals).unwrap();
            a.symmetrize();
            let dec = eigh(&a).unwrap();
            let sum: f64 = dec.values.iter().sum();
            prop_assert!((sum - a.trace()).abs() < 1e-8);
        }

        #[test]
        fn prop_eigh_reconstruction(
            vals in proptest::collection::vec(-5.0f64..5.0, 9))
        {
            let mut a = RMatrix::from_vec(3, 3, vals).unwrap();
            a.symmetrize();
            let dec = eigh(&a).unwrap();
            let r = reconstruct(&dec, 3);
            prop_assert!(r.max_abs_diff(&a) < 1e-8);
        }
    }
}
