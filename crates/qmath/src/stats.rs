//! Monte-Carlo statistics helpers.
//!
//! Every number the reproduction harness reports is a Monte-Carlo
//! estimate; these helpers turn raw counts into honest intervals so the
//! tables can show when a difference is real.

/// A binomial proportion with its 95% Wilson score interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Lower end of the 95% Wilson interval.
    pub lo: f64,
    /// Upper end of the 95% Wilson interval.
    pub hi: f64,
    /// Number of trials.
    pub trials: u64,
}

/// z-score for a 95% two-sided interval.
const Z95: f64 = 1.959964;

/// Computes a proportion with its 95% Wilson score interval — better
/// behaved than the normal approximation near 0 and 1, which is where
/// the advantage-probability sweeps live.
///
/// # Panics
/// Panics if `trials == 0` or `successes > trials`.
pub fn wilson(successes: u64, trials: u64) -> Proportion {
    assert!(trials > 0, "no trials");
    assert!(successes <= trials, "more successes than trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = Z95 * Z95;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (Z95 / denom) * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt();
    Proportion {
        estimate: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
        trials,
    }
}

impl Proportion {
    /// True if `value` falls inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }

    /// True if this interval lies entirely above `other`'s — the
    /// difference is significant at ~95%.
    pub fn significantly_above(&self, other: &Proportion) -> bool {
        self.lo > other.hi
    }

    /// Renders as `0.8536 ±0.0031` (symmetric half-width approximation).
    pub fn display(&self) -> String {
        let half = (self.hi - self.lo) / 2.0;
        format!("{:.4} ±{half:.4}", self.estimate)
    }
}

/// Sample mean and standard error of a set of measurements.
///
/// # Panics
/// Panics on empty input.
pub fn mean_and_stderr(samples: &[f64]) -> (f64, f64) {
    assert!(!samples.is_empty(), "no samples");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() == 1 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_basic_properties() {
        let p = wilson(850, 1000);
        assert!((p.estimate - 0.85).abs() < 1e-12);
        assert!(p.lo < 0.85 && 0.85 < p.hi);
        assert!(p.hi - p.lo < 0.05, "interval width {}", p.hi - p.lo);
        assert!(p.contains(0.85));
        assert!(!p.contains(0.5));
    }

    #[test]
    fn wilson_extremes_stay_in_bounds() {
        let zero = wilson(0, 100);
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.0, "zero successes still admit p > 0");
        let all = wilson(100, 100);
        assert_eq!(all.hi, 1.0);
        assert!(all.lo < 1.0);
    }

    #[test]
    fn wilson_narrows_with_trials() {
        let small = wilson(75, 100);
        let large = wilson(7500, 10_000);
        assert!(large.hi - large.lo < small.hi - small.lo);
    }

    #[test]
    fn significance_detects_chsh_gap() {
        // 0.8536 vs 0.75 at 10⁴ trials each: decisively separated.
        let q = wilson(8536, 10_000);
        let c = wilson(7500, 10_000);
        assert!(q.significantly_above(&c));
        assert!(!c.significantly_above(&q));
    }

    #[test]
    fn mean_and_stderr_basics() {
        let (m, se) = mean_and_stderr(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((se - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let (m1, se1) = mean_and_stderr(&[5.0]);
        assert_eq!((m1, se1), (5.0, 0.0));
    }

    #[test]
    fn display_format() {
        let p = wilson(500, 1000);
        let s = p.display();
        assert!(s.starts_with("0.5000 ±"), "{s}");
    }
}
