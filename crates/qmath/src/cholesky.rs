//! Cholesky factorization and positive-semidefiniteness checks.

use crate::eigen::eigh;
use crate::error::MathError;
use crate::rmatrix::RMatrix;

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix, returning lower-triangular `L`.
///
/// # Errors
/// - [`MathError::NotSquare`] for non-square input.
/// - [`MathError::NotPositiveDefinite`] (with the failing pivot) if a
///   non-positive pivot is encountered — i.e. the matrix is indefinite or
///   only semidefinite.
pub fn cholesky(a: &RMatrix) -> Result<RMatrix, MathError> {
    if !a.is_square() {
        return Err(MathError::NotSquare {
            op: "cholesky",
            dims: (a.rows(), a.cols()),
        });
    }
    let n = a.rows();
    let mut l = RMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(MathError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// True if the symmetric matrix `a` is positive semidefinite within `tol`
/// (smallest eigenvalue ≥ `-tol`).
///
/// Uses the eigendecomposition rather than attempted Cholesky so that
/// boundary cases (rank-deficient PSD matrices such as pure-state density
/// matrices) are classified correctly.
///
/// # Errors
/// Propagates [`eigh`] errors (non-square or asymmetric input).
pub fn is_positive_semidefinite(a: &RMatrix, tol: f64) -> Result<bool, MathError> {
    let dec = eigh(a)?;
    Ok(dec.values.first().is_none_or(|&min| min >= -tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_known_factorization() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, √2]]
        let a = RMatrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let l = cholesky(&a).unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
        // Reconstruction
        let r = l.matmul(&l.transpose()).unwrap();
        assert!(r.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = RMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            cholesky(&a),
            Err(MathError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn cholesky_rejects_nonsquare() {
        assert!(matches!(
            cholesky(&RMatrix::zeros(2, 3)),
            Err(MathError::NotSquare { .. })
        ));
    }

    #[test]
    fn psd_check_boundary_cases() {
        // Rank-1 PSD (semidefinite, Cholesky would fail).
        let a = RMatrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(is_positive_semidefinite(&a, 1e-9).unwrap());
        // Indefinite.
        let b = RMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(!is_positive_semidefinite(&b, 1e-9).unwrap());
        // Zero matrix is PSD.
        assert!(is_positive_semidefinite(&RMatrix::zeros(3, 3), 1e-9).unwrap());
    }
}
