//! Dense row-major complex matrices.
//!
//! Used by the quantum simulator for density matrices, unitaries and Kraus
//! operators. The API mirrors [`crate::rmatrix::RMatrix`] with the complex
//! extras a quantum library needs: dagger (conjugate transpose),
//! Hermiticity checks, and Kronecker (tensor) products.

use crate::complex::C64;
use crate::error::MathError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of [`C64`] values.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the n×n identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Result<Self, MathError> {
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                op: "CMatrix::from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(CMatrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)` at each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a complex matrix from a real one (zero imaginary parts).
    pub fn from_real(r: &crate::rmatrix::RMatrix) -> Self {
        CMatrix::from_fn(r.rows(), r.cols(), |i, j| C64::real(r[(i, j)]))
    }

    /// The outer product `|v⟩⟨w|` of two complex vectors.
    pub fn outer(v: &[C64], w: &[C64]) -> Self {
        CMatrix::from_fn(v.len(), w.len(), |i, j| v[i] * w[j].conj())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[C64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Conjugate transpose (the physicists' dagger, `A†`).
    pub fn dagger(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Matrix product.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if inner dimensions differ.
    pub fn matmul(&self, rhs: &CMatrix) -> Result<CMatrix, MathError> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                op: "cmatmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == C64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if `v.len() != cols`.
    pub fn matvec(&self, v: &[C64]) -> Result<Vec<C64>, MathError> {
        if v.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                op: "cmatvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .map(|(a, x)| *a * *x)
                    .sum()
            })
            .collect())
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let (r1, c1, r2, c2) = (self.rows, self.cols, rhs.rows, rhs.cols);
        CMatrix::from_fn(r1 * r2, c1 * c2, |i, j| {
            self[(i / r2, j / c2)] * rhs[(i % r2, j % c2)]
        })
    }

    /// Scales every entry by a complex factor.
    pub fn scaled(&self, alpha: C64) -> CMatrix {
        let mut out = self.clone();
        for x in out.data.iter_mut() {
            *x *= alpha;
        }
        out
    }

    /// Trace.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Maximum deviation from Hermiticity `max |A[i][j] - conj(A[j][i])|`.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn max_nonhermiticity(&self) -> f64 {
        assert!(self.is_square(), "hermiticity of non-square matrix");
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            worst = worst.max(self[(i, i)].im.abs());
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)].conj()).abs());
            }
        }
        worst
    }

    /// True if Hermitian within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.max_nonhermiticity() <= tol
    }

    /// True if `A†A = I` within `tol` (i.e. `A` is unitary).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.dagger().matmul(self).expect("square matmul");
        prod.max_abs_diff(&CMatrix::identity(self.rows)) <= tol
    }

    /// Entrywise maximum absolute difference from another matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &CMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add shape");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a + *b)
            .collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub shape");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a - *b)
            .collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs).expect("cmatmul shape mismatch")
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:6.3}{:+6.3}i", self[(i, j)].re, self[(i, j)].im)?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMatrix {
        CMatrix::from_vec(
            2,
            2,
            vec![C64::ZERO, C64::ONE, C64::ONE, C64::ZERO],
        )
        .unwrap()
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_vec(
            2,
            2,
            vec![C64::ZERO, -C64::I, C64::I, C64::ZERO],
        )
        .unwrap()
    }

    #[test]
    fn paulis_are_hermitian_and_unitary() {
        for p in [pauli_x(), pauli_y()] {
            assert!(p.is_hermitian(1e-12));
            assert!(p.is_unitary(1e-12));
        }
    }

    #[test]
    fn pauli_algebra_xy_equals_iz() {
        let xy = pauli_x().matmul(&pauli_y()).unwrap();
        // XY = iZ
        let iz = CMatrix::from_vec(
            2,
            2,
            vec![C64::I, C64::ZERO, C64::ZERO, -C64::I],
        )
        .unwrap();
        assert!(xy.max_abs_diff(&iz) < 1e-12);
    }

    #[test]
    fn dagger_involution() {
        let a = CMatrix::from_fn(3, 2, |i, j| C64::new(i as f64, j as f64));
        assert!(a.dagger().dagger().max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn kron_dimensions_and_values() {
        let i2 = CMatrix::identity(2);
        let x = pauli_x();
        let ix = i2.kron(&x);
        assert_eq!(ix.rows(), 4);
        // I ⊗ X block structure: X in top-left and bottom-right blocks
        assert_eq!(ix[(0, 1)], C64::ONE);
        assert_eq!(ix[(2, 3)], C64::ONE);
        assert_eq!(ix[(0, 2)], C64::ZERO);
        assert!(ix.is_unitary(1e-12));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = pauli_x();
        let b = pauli_y();
        let lhs = a.kron(&b).matmul(&b.kron(&a)).unwrap();
        let rhs = a.matmul(&b).unwrap().kron(&b.matmul(&a).unwrap());
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn outer_product_trace_is_inner_product() {
        let v = vec![C64::new(0.6, 0.0), C64::new(0.0, 0.8)];
        let p = CMatrix::outer(&v, &v);
        assert!(p.trace().approx_eq(C64::ONE, 1e-12));
        assert!(p.is_hermitian(1e-12));
    }

    #[test]
    fn matvec_applies_matrix() {
        let x = pauli_x();
        let v = vec![C64::ONE, C64::ZERO];
        let w = x.matvec(&v).unwrap();
        assert_eq!(w, vec![C64::ZERO, C64::ONE]);
    }

    #[test]
    fn trace_linear() {
        let a = pauli_x();
        let b = pauli_y();
        let t = (&a + &b).trace();
        assert!(t.approx_eq(a.trace() + b.trace(), 1e-12));
    }

    #[test]
    fn non_hermitian_detected() {
        let mut a = CMatrix::identity(2);
        a[(0, 1)] = C64::new(1.0, 0.0);
        assert!(!a.is_hermitian(1e-12));
        assert!((a.max_nonhermiticity() - 1.0).abs() < 1e-12);
    }
}
