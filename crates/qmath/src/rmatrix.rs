//! Dense row-major real (`f64`) matrices.

use crate::error::MathError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f64` values.
///
/// Sized for the workspace's needs — Gram matrices of non-local games and
/// cost matrices — i.e. dimensions in the tens to low hundreds. All
/// operations are straightforward O(n³)/O(n²) loops; no blocking or SIMD.
#[derive(Debug, Clone, PartialEq)]
pub struct RMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the n×n identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = RMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MathError> {
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                op: "RMatrix::from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(RMatrix { rows, cols, data })
    }

    /// Creates a matrix from nested rows. All rows must have equal length.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] on ragged input and
    /// [`MathError::Empty`] on no rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MathError> {
        if rows.is_empty() {
            return Err(MathError::Empty {
                op: "RMatrix::from_rows",
            });
        }
        let cols = rows[0].len();
        for r in rows {
            if r.len() != cols {
                return Err(MathError::DimensionMismatch {
                    op: "RMatrix::from_rows",
                    lhs: (1, cols),
                    rhs: (1, r.len()),
                });
            }
        }
        let data = rows.iter().flatten().copied().collect();
        Ok(RMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(i, j)` at each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = RMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> RMatrix {
        RMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if inner dimensions differ.
    pub fn matmul(&self, rhs: &RMatrix) -> Result<RMatrix, MathError> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = RMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vecops::dot(self.row(i), v))
            .collect())
    }

    /// Scales every entry by `alpha`.
    pub fn scaled(&self, alpha: f64) -> RMatrix {
        let mut out = self.clone();
        for x in out.data.iter_mut() {
            *x *= alpha;
        }
        out
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius inner product `⟨A, B⟩ = Σ AᵢⱼBᵢⱼ`.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] on shape mismatch.
    pub fn frobenius_inner(&self, rhs: &RMatrix) -> Result<f64, MathError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(MathError::DimensionMismatch {
                op: "frobenius_inner",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute asymmetry `max |A[i][j] - A[j][i]|`; 0 for symmetric.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn max_asymmetry(&self) -> f64 {
        assert!(self.is_square(), "max_asymmetry of non-square matrix");
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ)/2`.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize of non-square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }

    /// Entrywise maximum absolute difference from another matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &RMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        crate::vecops::max_abs_diff(&self.data, &rhs.data)
    }
}

impl Index<(usize, usize)> for RMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &RMatrix {
    type Output = RMatrix;
    fn add(self, rhs: &RMatrix) -> RMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add shape");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        RMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &RMatrix {
    type Output = RMatrix;
    fn sub(self, rhs: &RMatrix) -> RMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub shape");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        RMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &RMatrix {
    type Output = RMatrix;
    fn mul(self, rhs: &RMatrix) -> RMatrix {
        self.matmul(rhs).expect("matmul shape mismatch")
    }
}

impl fmt::Display for RMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:9.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat2(a: f64, b: f64, c: f64, d: f64) -> RMatrix {
        RMatrix::from_vec(2, 2, vec![a, b, c, d]).unwrap()
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = mat2(1.0, 2.0, 3.0, 4.0);
        let i = RMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = mat2(1.0, 2.0, 3.0, 4.0);
        let b = mat2(0.0, 1.0, 1.0, 0.0);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, mat2(2.0, 1.0, 4.0, 3.0));
    }

    #[test]
    fn matmul_dimension_error() {
        let a = RMatrix::zeros(2, 3);
        let b = RMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = RMatrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 2);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = mat2(1.0, 2.0, 3.0, 4.0);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v).unwrap(), vec![17.0, 39.0]);
    }

    #[test]
    fn trace_and_frobenius() {
        let a = mat2(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.trace(), 5.0);
        assert_eq!(a.frobenius_inner(&a).unwrap(), 30.0);
        assert!((a.frobenius_norm() - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut a = mat2(1.0, 5.0, 1.0, 2.0);
        assert_eq!(a.max_asymmetry(), 4.0);
        a.symmetrize();
        assert_eq!(a.max_asymmetry(), 0.0);
        assert_eq!(a[(0, 1)], 3.0);
    }

    #[test]
    fn from_rows_ragged_errors() {
        let err = RMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(matches!(err, Err(MathError::DimensionMismatch { .. })));
        assert!(matches!(
            RMatrix::from_rows(&[]),
            Err(MathError::Empty { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_transpose_preserves_frobenius(
            vals in proptest::collection::vec(-10.0f64..10.0, 12))
        {
            let a = RMatrix::from_vec(3, 4, vals).unwrap();
            prop_assert!((a.frobenius_norm() - a.transpose().frobenius_norm()).abs() < 1e-9);
        }

        #[test]
        fn prop_matmul_associative(
            a_vals in proptest::collection::vec(-3.0f64..3.0, 4),
            b_vals in proptest::collection::vec(-3.0f64..3.0, 4),
            c_vals in proptest::collection::vec(-3.0f64..3.0, 4))
        {
            let a = RMatrix::from_vec(2, 2, a_vals).unwrap();
            let b = RMatrix::from_vec(2, 2, b_vals).unwrap();
            let c = RMatrix::from_vec(2, 2, c_vals).unwrap();
            let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
            let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
            prop_assert!(ab_c.max_abs_diff(&a_bc) < 1e-9);
        }

        #[test]
        fn prop_trace_of_product_commutes(
            a_vals in proptest::collection::vec(-3.0f64..3.0, 9),
            b_vals in proptest::collection::vec(-3.0f64..3.0, 9))
        {
            let a = RMatrix::from_vec(3, 3, a_vals).unwrap();
            let b = RMatrix::from_vec(3, 3, b_vals).unwrap();
            let tab = a.matmul(&b).unwrap().trace();
            let tba = b.matmul(&a).unwrap().trace();
            prop_assert!((tab - tba).abs() < 1e-9);
        }
    }
}
