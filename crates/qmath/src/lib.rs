//! # qmath — small dense linear algebra for quantum simulation
//!
//! Self-contained numerical substrate for the `qnlg` workspace. Provides:
//!
//! - [`C64`]: a complex `f64` scalar type with full operator support.
//! - [`RMatrix`] / [`CMatrix`]: dense row-major real and complex matrices.
//! - [`eigen`]: Jacobi eigendecomposition for real-symmetric and Hermitian
//!   matrices (the workhorse behind PSD projection and density-matrix
//!   spectral analysis).
//! - [`cholesky`]: Cholesky factorization and PSD checks.
//! - [`psd`]: projection onto the positive-semidefinite cone and onto the
//!   elliptope (unit-diagonal PSD matrices), used by the XOR-game SDP solver.
//! - [`vecops`]: free functions over `&[f64]` vectors (dot, norm, axpy, ...).
//! - [`stattest`]: statistical acceptance-test helpers — Wilson intervals
//!   at arbitrary confidence, Hoeffding bounds, and the
//!   [`assert_prob_in!`] macro, so stochastic tests state their sample
//!   size and confidence instead of magic tolerances.
//!
//! Everything here is written for *small* dense problems (dimension up to a
//! few hundred): quantum states on ≤ 20 qubits and Gram matrices of
//! non-local games. No external linear-algebra dependency is used; the
//! algorithms are classical textbook methods chosen for robustness over
//! asymptotic speed, in the spirit of smoltcp's "simplicity and robustness"
//! design goals.

pub mod cholesky;
pub mod cmatrix;
pub mod complex;
pub mod eigen;
pub mod error;
pub mod psd;
pub mod rmatrix;
pub mod stats;
pub mod stattest;
pub mod vecops;

pub use cholesky::{cholesky, is_positive_semidefinite};
pub use cmatrix::CMatrix;
pub use complex::C64;
pub use eigen::{eigh, eigh_hermitian, EigenDecomposition};
pub use error::MathError;
pub use psd::{project_elliptope, project_psd};
pub use rmatrix::RMatrix;
pub use stats::{wilson, Proportion};
pub use stattest::{hoeffding_epsilon, hoeffding_samples, wilson_at, z_value, BoundCheck};

/// Default numerical tolerance used across the workspace for comparisons
/// of floating-point quantities that should be exact in infinite precision
/// (normalization, Hermiticity, trace preservation, ...).
pub const EPS: f64 = 1e-9;

/// Looser tolerance for quantities produced by iterative optimization
/// (e.g. the XOR-game quantum value), where convergence is only approximate.
pub const OPT_EPS: f64 = 1e-6;

/// Returns true if `a` and `b` are within `tol` of each other.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, EPS));
        assert!(!approx_eq(1.0, 1.1, EPS));
    }
}
