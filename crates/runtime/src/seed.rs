//! Deterministic seed-stream derivation.
//!
//! Every sweep point gets its own RNG seeded as a pure function of
//! `(master_seed, point_index)`, so results are bit-identical regardless
//! of worker count, chunking, or scheduling order. Derivation is
//! SplitMix64-style: golden-ratio increments pushed through the
//! variant-13 finalizer, the same construction the xoshiro authors
//! recommend for seeding and the one `bench::point_seed` already used.

/// The SplitMix64 finalizer (variant 13): a high-quality 64-bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Seed for stream `index` of the family identified by `master`.
///
/// Statistically independent across both arguments: two sweeps with
/// different master seeds share no streams, and within a sweep each
/// point's stream is decorrelated from its neighbors'.
#[inline]
pub fn stream_seed(master: u64, index: u64) -> u64 {
    mix64(master ^ mix64(index.wrapping_mul(GOLDEN).wrapping_add(GOLDEN)))
}

/// Deterministic per-point seed from experiment coordinates.
///
/// This is the exact function the bench harness has always used
/// (`bench::point_seed` now delegates here), kept bit-for-bit stable so
/// published experiment tables remain reproducible.
pub fn point_seed(experiment: u64, i: u64, j: u64) -> u64 {
    let z = experiment
        .wrapping_mul(GOLDEN)
        .wrapping_add(i)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(j);
    mix64(z)
}

/// A SplitMix64 stream generator: golden-ratio counter pushed through
/// [`mix64`] on every draw.
///
/// This is the allocation-free core generator for hot simulation paths
/// where `StdRng` (ChaCha12) is overkill: three multiplies and a handful
/// of shifts per `u64`. The state is a plain counter, so a stream can be
/// snapshotted, stored in a flat `Vec<u64>`, and resumed — exactly what
/// a sharded simulator needs to keep per-entity sub-streams in
/// structure-of-arrays form. Streams for related entities should be
/// seeded via [`stream_seed`] so they stay decorrelated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded at `seed`. Two streams with seeds from
    /// [`stream_seed`] under different indices never collide in practice.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Rebuild a stream from a raw snapshot taken with [`Self::raw`].
    #[inline]
    pub fn from_raw(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// The raw counter state, for storage in flat arrays.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.state
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix64(self.state)
    }

    /// Uniform double in `[0, 1)` from the top 53 bits of one draw.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` via the widening-multiply map
    /// (Lemire). One draw, no rejection loop; the residual bias is
    /// `< n / 2^64`, far below Monte-Carlo noise for any simulator-scale
    /// `n`, and the fixed draw count per call is what keeps sharded
    /// stream consumption a pure function of the call sequence.
    #[inline]
    pub fn gen_range(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0, "gen_range needs a non-empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        assert_eq!(stream_seed(1, 2), stream_seed(1, 2));
        assert_eq!(point_seed(1, 2, 3), point_seed(1, 2, 3));
    }

    #[test]
    fn streams_are_distinct_across_indices_and_masters() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..8u64 {
            for index in 0..64u64 {
                assert!(seen.insert(stream_seed(master, index)), "collision");
            }
        }
    }

    #[test]
    fn splitmix_stream_is_reproducible_and_snapshotable() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Snapshot/resume through the raw counter is lossless.
        let snap = a.raw();
        let tail: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut resumed = SplitMix64::from_raw(snap);
        let tail2: Vec<u64> = (0..8).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, tail2);
    }

    #[test]
    fn splitmix_ranges_and_floats_are_in_bounds() {
        let mut rng = SplitMix64::new(7);
        let mut seen_high = false;
        for _ in 0..4096 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let r = rng.gen_range(10);
            assert!(r < 10);
            seen_high |= r >= 8;
        }
        assert!(seen_high, "range draws never reached the top decile");
    }

    #[test]
    fn splitmix_matches_the_stream_seed_construction() {
        // One draw from a stream seeded at s is mix64(s + GOLDEN): the
        // same SplitMix64 recipe stream_seed builds on. Frozen so the
        // shard engine's draws can never silently drift.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), mix64(GOLDEN));
        assert_eq!(rng.next_u64(), mix64(GOLDEN.wrapping_mul(2)));
    }

    #[test]
    fn point_seed_matches_the_historical_formula() {
        // Frozen reference values computed from the original
        // bench::point_seed implementation; changing these silently
        // re-seeds every published experiment table.
        fn reference(experiment: u64, i: u64, j: u64) -> u64 {
            let mut z = experiment
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                .wrapping_add(j);
            z ^= z >> 30;
            z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        for e in [0u64, 1, 40, 99] {
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(point_seed(e, i, j), reference(e, i, j));
                }
            }
        }
    }
}
