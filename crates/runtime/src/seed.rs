//! Deterministic seed-stream derivation.
//!
//! Every sweep point gets its own RNG seeded as a pure function of
//! `(master_seed, point_index)`, so results are bit-identical regardless
//! of worker count, chunking, or scheduling order. Derivation is
//! SplitMix64-style: golden-ratio increments pushed through the
//! variant-13 finalizer, the same construction the xoshiro authors
//! recommend for seeding and the one `bench::point_seed` already used.

/// The SplitMix64 finalizer (variant 13): a high-quality 64-bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Seed for stream `index` of the family identified by `master`.
///
/// Statistically independent across both arguments: two sweeps with
/// different master seeds share no streams, and within a sweep each
/// point's stream is decorrelated from its neighbors'.
#[inline]
pub fn stream_seed(master: u64, index: u64) -> u64 {
    mix64(master ^ mix64(index.wrapping_mul(GOLDEN).wrapping_add(GOLDEN)))
}

/// Deterministic per-point seed from experiment coordinates.
///
/// This is the exact function the bench harness has always used
/// (`bench::point_seed` now delegates here), kept bit-for-bit stable so
/// published experiment tables remain reproducible.
pub fn point_seed(experiment: u64, i: u64, j: u64) -> u64 {
    let z = experiment
        .wrapping_mul(GOLDEN)
        .wrapping_add(i)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(j);
    mix64(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        assert_eq!(stream_seed(1, 2), stream_seed(1, 2));
        assert_eq!(point_seed(1, 2, 3), point_seed(1, 2, 3));
    }

    #[test]
    fn streams_are_distinct_across_indices_and_masters() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..8u64 {
            for index in 0..64u64 {
                assert!(seen.insert(stream_seed(master, index)), "collision");
            }
        }
    }

    #[test]
    fn point_seed_matches_the_historical_formula() {
        // Frozen reference values computed from the original
        // bench::point_seed implementation; changing these silently
        // re-seeds every published experiment table.
        fn reference(experiment: u64, i: u64, j: u64) -> u64 {
            let mut z = experiment
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                .wrapping_add(j);
            z ^= z >> 30;
            z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        for e in [0u64, 1, 40, 99] {
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(point_seed(e, i, j), reference(e, i, j));
                }
            }
        }
    }
}
