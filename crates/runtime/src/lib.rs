//! # qnlg-runtime — deterministic parallel sweep executor
//!
//! Every figure in the paper is a Monte-Carlo sweep over a parameter
//! grid. This crate gives the workspace one way to run those sweeps:
//!
//! - [`par_map`] / [`par_map_threads`] — a fixed-size scoped worker pool
//!   with chunked work-stealing deques (no dependency beyond `std`),
//!   replacing the old spawn-one-thread-per-point pattern.
//! - [`par_sweep`] / [`par_sweep_threads`] — the same pool plus
//!   *deterministic RNG stream splitting*: each point's generator is
//!   seeded from `(master_seed, point_index)` via SplitMix64
//!   ([`seed::stream_seed`]), so sweep output is **bit-identical for any
//!   worker count or scheduling order**. Reproducibility by construction.
//! - [`grid2`] — row-major cartesian product helper for 2-D sweeps.
//!
//! Worker count comes from the `QNLG_THREADS` environment variable when
//! set, else from [`std::thread::available_parallelism`].
//!
//! ```
//! let squares = runtime::par_map(&[1, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Same master seed + same grid => same results, on any machine,
//! // at any parallelism.
//! let a = runtime::par_sweep_threads(1, 7, &[0.1, 0.2], |_, &p, rng| {
//!     use rand::Rng;
//!     (p, rng.gen::<f64>())
//! });
//! let b = runtime::par_sweep_threads(8, 7, &[0.1, 0.2], |_, &p, rng| {
//!     use rand::Rng;
//!     (p, rng.gen::<f64>())
//! });
//! assert_eq!(a, b);
//! ```

pub mod pool;
pub mod seed;

pub use pool::{par_map, par_map_mut, par_map_mut_threads, par_map_threads, thread_count};
pub use seed::{mix64, point_seed, stream_seed, SplitMix64};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parallel sweep with per-point deterministic RNG streams and an
/// explicit worker count.
///
/// `f` receives `(index, &point, &mut rng)` where the generator is
/// seeded by [`seed::stream_seed`]`(master_seed, index)` — a pure
/// function of the call's arguments, never of scheduling.
pub fn par_sweep_threads<T, R, F>(threads: usize, master_seed: u64, points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &mut StdRng) -> R + Sync,
{
    par_map_threads(threads, points, |i, p| {
        let mut rng = StdRng::seed_from_u64(stream_seed(master_seed, i as u64));
        f(i, p, &mut rng)
    })
}

/// Parallel sweep with per-point deterministic RNG streams, using the
/// configured worker count ([`thread_count`]).
pub fn par_sweep<T, R, F>(master_seed: u64, points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &mut StdRng) -> R + Sync,
{
    par_sweep_threads(thread_count(), master_seed, points, f)
}

/// Row-major cartesian product of two axes: the standard point list for
/// a 2-D sweep (`index = row * cols.len() + col`).
pub fn grid2_of<A: Clone, B: Clone>(rows: &[A], cols: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(rows.len() * cols.len());
    for r in rows {
        for c in cols {
            out.push((r.clone(), c.clone()));
        }
    }
    out
}

/// Row-major index grid for a `rows × cols` sweep: `(r, c)` pairs with
/// `index = r * cols + c`, the common shape for table sweeps that index
/// into their own axis arrays.
pub fn grid2(rows: usize, cols: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            out.push((r, c));
        }
    }
    out
}

/// The generator for stream `index` of `master_seed` — the same stream
/// [`par_sweep`] hands to point `index`. Useful for follow-up draws that
/// must not perturb (or depend on) any sweep point's stream: derive them
/// from an index past the end of the grid.
pub fn stream_rng(master_seed: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(stream_seed(master_seed, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn sweep_results_are_worker_count_invariant() {
        let points: Vec<u32> = (0..40).collect();
        let run = |threads| {
            par_sweep_threads(threads, 0xfeed, &points, |_, &p, rng| {
                (p, rng.gen::<u64>(), rng.gen::<f64>())
            })
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference);
        }
    }

    #[test]
    fn different_master_seeds_give_different_streams() {
        let points = [(); 4];
        let a = par_sweep_threads(2, 1, &points, |_, _, rng| rng.gen::<u64>());
        let b = par_sweep_threads(2, 2, &points, |_, _, rng| rng.gen::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn grid2_is_row_major() {
        let g = grid2_of(&[0, 1], &['a', 'b', 'c']);
        assert_eq!(
            g,
            vec![(0, 'a'), (0, 'b'), (0, 'c'), (1, 'a'), (1, 'b'), (1, 'c')]
        );
        assert_eq!(g[3 + 2], (1, 'c'));
        assert_eq!(grid2(2, 3)[3 + 2], (1, 2));
        assert_eq!(grid2(2, 3).len(), 6);
    }

    #[test]
    fn stream_rng_matches_sweep_streams() {
        let points = [(); 3];
        let swept = par_sweep_threads(2, 99, &points, |_, _, rng| rng.gen::<u64>());
        for (i, &v) in swept.iter().enumerate() {
            assert_eq!(stream_rng(99, i as u64).gen::<u64>(), v);
        }
    }
}
