//! The sweep executor: a fixed-size scoped worker pool over a chunked
//! work-stealing queue.
//!
//! Replaces the bench harness's historical spawn-one-OS-thread-per-point
//! pattern (60+ threads for a Figure-4 sweep). Work is split into
//! contiguous index chunks distributed round-robin across per-worker
//! deques; a worker drains its own deque from the front and steals from
//! the back of its neighbors' when empty. Results carry their item index,
//! so output order — and therefore every downstream table — is
//! independent of scheduling.

use std::collections::VecDeque;
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

/// Items mapped (inline or pooled) — deterministic for a given workload.
static ITEMS_EXECUTED: obs::LazyCounter = obs::LazyCounter::new("pool.items.executed");
/// Chunks a worker drained from its own deque.
static CHUNKS_OWN: obs::LazyCounter = obs::LazyCounter::new("pool.chunks.own");
/// Chunks a worker stole from a neighbor's deque.
static CHUNKS_STOLEN: obs::LazyCounter = obs::LazyCounter::new("pool.chunks.stolen");
/// Workers spawned across all pooled calls.
static WORKERS_SPAWNED: obs::LazyCounter = obs::LazyCounter::new("pool.workers.spawned");
/// Chunk sizes in items, sharded per worker.
static CHUNK_ITEMS: obs::LazyHist = obs::LazyHist::new("pool.chunk.items");
/// Per-worker wall-clock spent inside `f` (one sample per worker).
static WORKER_BUSY_NS: obs::LazyHist = obs::LazyHist::new("time.pool.worker.busy.ns");
/// Per-worker wall-clock spent queueing/stealing/waiting (lifetime − busy).
static WORKER_IDLE_NS: obs::LazyHist = obs::LazyHist::new("time.pool.worker.idle.ns");

/// Number of worker threads a parallel call will use: the `QNLG_THREADS`
/// environment variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`]. A set-but-invalid value (not a
/// number, or zero) is reported once to stderr and then ignored.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("QNLG_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => {
                static WARNED: Once = Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: QNLG_THREADS={v:?} is not a positive integer; \
                         falling back to available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Chunks per worker to create: more gives the stealer finer granularity
/// when point costs are skewed; fewer keeps queue traffic low.
const CHUNKS_PER_WORKER: usize = 4;

/// Parallel indexed map over a slice with an explicit worker count.
///
/// `f` receives `(index, &item)` and results are returned in item order.
/// `threads == 1` runs inline with no thread machinery at all, which is
/// also the reference path for determinism tests.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let len = items.len();
    ITEMS_EXECUTED.add(len as u64);
    if threads <= 1 || len <= 1 {
        // The inline path is its own span on the main track, so a
        // single-core trace still shows where map time went.
        trace::span_begin(trace::Track::Main, "pool.map.inline");
        let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        trace::span_end(trace::Track::Main, "pool.map.inline");
        return out;
    }
    let workers = threads.min(len);
    let chunk = len.div_ceil(workers * CHUNKS_PER_WORKER).max(1);

    // Per-worker deques of (start, end) index ranges, filled round-robin.
    let queues: Vec<Mutex<VecDeque<(usize, usize)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (k, start) in (0..len).step_by(chunk).enumerate() {
        let end = (start + chunk).min(len);
        queues[k % workers]
            .lock()
            .expect("queue lock")
            .push_back((start, end));
    }

    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let collected = &collected;
            let f = &f;
            scope.spawn(move || {
                WORKERS_SPAWNED.inc();
                // Clocks are read only while obs collection is on; with it
                // off the accounting is one relaxed bool load per chunk.
                let timing = obs::enabled();
                let spawned = timing.then(Instant::now);
                let mut busy = Duration::ZERO;
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    // Own queue first (front: preserves cache-friendly
                    // contiguity), then steal from the back of others'.
                    let mut stolen = false;
                    let next = queues[w].lock().expect("queue lock").pop_front().or_else(|| {
                        stolen = true;
                        (1..workers).find_map(|d| {
                            queues[(w + d) % workers]
                                .lock()
                                .expect("queue lock")
                                .pop_back()
                        })
                    });
                    let Some((start, end)) = next else { break };
                    let track = trace::Track::Worker(w as u32);
                    if stolen {
                        CHUNKS_STOLEN.inc();
                        trace::instant_wall(track, "pool.steal");
                    } else {
                        CHUNKS_OWN.inc();
                    }
                    CHUNK_ITEMS.record_shard(w, (end - start) as u64);
                    let t0 = timing.then(Instant::now);
                    trace::span_begin(track, "pool.chunk");
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        local.push((i, f(i, item)));
                    }
                    trace::span_end(track, "pool.chunk");
                    if let Some(t0) = t0 {
                        busy += t0.elapsed();
                    }
                }
                if let Some(spawned) = spawned {
                    let total = spawned.elapsed();
                    let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
                    WORKER_BUSY_NS.record_shard(w, ns(busy));
                    WORKER_IDLE_NS.record_shard(w, ns(total.saturating_sub(busy)));
                }
                collected.lock().expect("result lock").extend(local);
            });
        }
    });

    let pairs = collected.into_inner().expect("result lock");
    debug_assert_eq!(pairs.len(), len);
    let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for (i, r) in pairs {
        debug_assert!(out[i].is_none(), "index {i} produced twice");
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index produced exactly once"))
        .collect()
}

/// Parallel indexed map over a *mutable* slice with an explicit worker
/// count: each worker owns one contiguous sub-slice via `chunks_mut`, so
/// there is no locking (and no stealing) on the work path.
///
/// Built for advancing sharded simulator state, where the items are a
/// handful of equal-cost shard structs rather than thousands of skewed
/// sweep points — static partitioning is both sufficient and the only
/// scheme that lets every worker hold `&mut` state without locks.
/// Results are returned in item order; `threads <= 1` runs inline and is
/// the reference path for determinism tests.
pub fn par_map_mut_threads<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let len = items.len();
    ITEMS_EXECUTED.add(len as u64);
    if threads <= 1 || len <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(len);
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (k, part) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || {
                WORKERS_SPAWNED.inc();
                CHUNK_ITEMS.record_shard(k, part.len() as u64);
                let track = trace::Track::Worker(k as u32);
                trace::span_begin(track, "pool.chunk");
                let base = k * chunk;
                let out = part
                    .iter_mut()
                    .enumerate()
                    .map(|(j, t)| f(base + j, t))
                    .collect::<Vec<R>>();
                trace::span_end(track, "pool.chunk");
                out
            }));
        }
        // Joining in spawn order keeps results in item order.
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map_mut worker panicked"))
            .collect()
    })
}

/// Parallel indexed map over a mutable slice using the configured worker
/// count ([`thread_count`]).
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    par_map_mut_threads(thread_count(), items, f)
}

/// Parallel indexed map using the configured worker count
/// ([`thread_count`]).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(thread_count(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map_threads(4, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let items: Vec<u64> = (0..100).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(7);
        let one = par_map_threads(1, &items, f);
        let two = par_map_threads(2, &items, f);
        let many = par_map_threads(16, &items, f);
        assert_eq!(one, two);
        assert_eq!(one, many);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_threads(8, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = par_map_threads(32, &[1, 2, 3], |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_returns_in_order() {
        let mut items: Vec<u64> = (0..97).collect();
        let out = par_map_mut_threads(4, &mut items, |i, x| {
            assert_eq!(i as u64, *x);
            *x += 100;
            *x
        });
        assert_eq!(out, (100..197).collect::<Vec<_>>());
        assert_eq!(items, (100..197).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_mut_is_worker_count_invariant() {
        let run = |threads| {
            let mut items: Vec<u64> = (0..31).collect();
            let out = par_map_mut_threads(threads, &mut items, |i, x| {
                *x = x.wrapping_mul(0x9e37_79b9).rotate_left(i as u32 % 13);
                *x
            });
            (items, out)
        };
        let reference = run(1);
        for threads in [2, 3, 16] {
            assert_eq!(run(threads), reference);
        }
    }

    #[test]
    fn par_map_mut_handles_empty_and_singleton() {
        let mut empty: Vec<u32> = vec![];
        assert!(par_map_mut_threads(8, &mut empty, |_, x| *x).is_empty());
        let mut one = vec![5u32];
        assert_eq!(par_map_mut_threads(8, &mut one, |_, x| *x + 1), vec![6]);
    }

    #[test]
    fn pool_metrics_record_when_enabled() {
        obs::set_enabled(true);
        let items: Vec<u64> = (0..100).collect();
        let _ = par_map_threads(4, &items, |_, &x| x + 1);
        obs::set_enabled(false);
        let snap = obs::snapshot();
        assert!(snap.counter("pool.items.executed").unwrap_or(0) >= 100);
        let chunks = snap.counter("pool.chunks.own").unwrap_or(0)
            + snap.counter("pool.chunks.stolen").unwrap_or(0);
        assert!(chunks >= 1, "no chunks accounted");
        assert!(snap.hist("pool.chunk.items").is_some_and(|h| h.count >= 1));
    }

    #[test]
    fn skewed_work_is_stolen() {
        // One pathologically slow item at index 0; the rest must still
        // complete promptly and in order. (Correctness check — timing is
        // exercised by benches/sweep.rs.)
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_threads(4, &items, |_, &x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }
}
