//! Integration: the §4.2 reduction argument beyond the 3-party case.
//!
//! The crate-level tests verify the 3-party invariance; here we verify the
//! paper's "the same logic extends to larger networks" sentence — with 4
//! parties and 2 inactive, the active pair's joint distribution is
//! invariant under anything the inactive parties do.

use qnlg::qmath::CMatrix;
use qnlg::qsim::measure::Basis1;
use qnlg::qsim::{bell, DensityMatrix};

/// `P(a, b)` for parties 0, 1 of `rho_ab` measured in angle bases.
fn joint(rho_ab: &DensityMatrix, ta: f64, tb: f64) -> [f64; 4] {
    let proj = |basis: &Basis1, outcome: usize| -> CMatrix {
        let phi = if outcome == 1 { basis.phi1 } else { basis.phi0 };
        CMatrix::from_vec(
            2,
            2,
            vec![
                phi[0] * phi[0].conj(),
                phi[0] * phi[1].conj(),
                phi[1] * phi[0].conj(),
                phi[1] * phi[1].conj(),
            ],
        )
        .expect("2x2")
    };
    let (ba, bb) = (Basis1::angle(ta), Basis1::angle(tb));
    let mut out = [0.0; 4];
    for a in 0..2 {
        for b in 0..2 {
            let p = proj(&ba, a).kron(&proj(&bb, b));
            out[a * 2 + b] = rho_ab.expectation(&p).expect("dims match");
        }
    }
    out
}

#[test]
fn four_party_ghz_two_inactive_parties_are_irrelevant() {
    let rho = DensityMatrix::from_pure(&bell::ghz(4));

    // Scenario A: inactive parties 2, 3 do nothing (trace them out).
    let silent = rho.partial_trace(&[0, 1]).expect("valid keep set");

    // Scenario B: both inactive parties measure first, in assorted bases.
    for tc in [0.0, 0.7, 1.9] {
        for td in [0.4, 2.2] {
            let mut mixed = CMatrix::zeros(4, 4);
            let mut total_p = 0.0;
            // Enumerate the inactive parties' joint outcomes.
            for oc in 0..2u8 {
                for od in 0..2u8 {
                    let (rho_cond, p) = project_two(&rho, tc, oc, td, od);
                    if p < 1e-15 {
                        continue;
                    }
                    total_p += p;
                    let reduced = rho_cond.partial_trace(&[0, 1]).expect("valid");
                    mixed = &mixed + &reduced.matrix().scaled(qnlg::qmath::C64::real(p));
                }
            }
            assert!((total_p - 1.0).abs() < 1e-10);
            let mixed_rho = DensityMatrix::from_matrix(mixed).expect("valid mixture");
            // Identical reduced states → identical joint distributions for
            // every choice of active-party bases.
            for ta in [0.0, 0.5, 1.1] {
                let d_silent = joint(&silent, ta, ta + 0.3);
                let d_mixed = joint(&mixed_rho, ta, ta + 0.3);
                for (s, m) in d_silent.iter().zip(&d_mixed) {
                    assert!(
                        (s - m).abs() < 1e-10,
                        "tc={tc} td={td} ta={ta}: {d_silent:?} vs {d_mixed:?}"
                    );
                }
            }
        }
    }
}

/// Projects parties 2 and 3 onto outcomes (oc, od) in angle bases
/// (tc, td); returns the normalized conditional state and the branch
/// probability.
fn project_two(
    rho: &DensityMatrix,
    tc: f64,
    oc: u8,
    td: f64,
    od: u8,
) -> (DensityMatrix, f64) {
    let proj1 = |theta: f64, outcome: u8| -> CMatrix {
        let basis = Basis1::angle(theta);
        let phi = if outcome == 1 { basis.phi1 } else { basis.phi0 };
        CMatrix::from_vec(
            2,
            2,
            vec![
                phi[0] * phi[0].conj(),
                phi[0] * phi[1].conj(),
                phi[1] * phi[0].conj(),
                phi[1] * phi[1].conj(),
            ],
        )
        .expect("2x2")
    };
    let full = CMatrix::identity(4)
        .kron(&proj1(tc, oc))
        .kron(&proj1(td, od));
    let projected = full
        .matmul(rho.matrix())
        .and_then(|m| m.matmul(&full))
        .expect("square");
    let p = projected.trace().re;
    if p < 1e-15 {
        return (DensityMatrix::maximally_mixed(4), 0.0);
    }
    let normalized = projected.scaled(qnlg::qmath::C64::real(1.0 / p));
    (
        DensityMatrix::from_matrix(normalized).expect("valid conditional state"),
        p,
    )
}

#[test]
fn reduction_holds_for_w_state_too() {
    // Not just GHZ: the argument is state-independent.
    let rho = DensityMatrix::from_pure(&bell::w_state(4));
    let silent = rho.partial_trace(&[0, 1]).expect("valid");
    let mut mixed = CMatrix::zeros(4, 4);
    for oc in 0..2u8 {
        for od in 0..2u8 {
            let (rho_cond, p) = project_two(&rho, 0.9, oc, 1.7, od);
            if p < 1e-15 {
                continue;
            }
            let reduced = rho_cond.partial_trace(&[0, 1]).expect("valid");
            mixed = &mixed + &reduced.matrix().scaled(qnlg::qmath::C64::real(p));
        }
    }
    let mixed_rho = DensityMatrix::from_matrix(mixed).expect("valid");
    assert!(
        silent.matrix().max_abs_diff(mixed_rho.matrix()) < 1e-10,
        "reduced states must be identical"
    );
}
