//! Cross-validation: the three implementations of CHSH-correlated
//! decisions must agree statistically.
//!
//! 1. Exact statevector measurement (`qsim::SharedPair` + angles)
//! 2. Closed-form joint sampling (`games::CorrelationBox`)
//! 3. The referee-mediated coordinator (`qnlg_core::Endpoint`)
//!
//! All three claim to sample `p(a,b|x,y) = (1 + (−1)^{a⊕b}C[x][y])/4`
//! with uniform marginals; this test measures all three joint
//! distributions on every input pair and bounds their pairwise distance.

use qnlg::games::chsh::{alice_angle, bob_angle};
use qnlg::games::CorrelationBox;
use qnlg::qnlg_core::{CoordinatorBuilder, TaskClass};
use qnlg::qsim::{Party, SharedPair};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: usize = 40_000;
const TOL: f64 = 0.015;

/// Empirical joint distribution [P(00), P(01), P(10), P(11)].
fn dist_exact(x: usize, y: usize, seed: u64) -> [f64; 4] {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = [0usize; 4];
    for _ in 0..TRIALS {
        let mut pair = SharedPair::ideal();
        let a = pair
            .measure_angle(Party::A, alice_angle(x), &mut rng)
            .expect("fresh pair") as usize;
        let b = pair
            .measure_angle(Party::B, bob_angle(y), &mut rng)
            .expect("fresh pair") as usize;
        counts[a * 2 + b] += 1;
    }
    counts.map(|c| c as f64 / TRIALS as f64)
}

fn dist_box(x: usize, y: usize, seed: u64) -> [f64; 4] {
    let mut rng = StdRng::seed_from_u64(seed);
    let boxx = CorrelationBox::chsh_optimal();
    let mut counts = [0usize; 4];
    for _ in 0..TRIALS {
        let (a, b) = boxx.sample(x, y, &mut rng);
        counts[usize::from(a) * 2 + usize::from(b)] += 1;
    }
    counts.map(|c| c as f64 / TRIALS as f64)
}

fn dist_coordinator(x: usize, y: usize, seed: u64) -> [f64; 4] {
    // The coordinator implements the FLIPPED game (b negated); undo the
    // flip to compare against the standard-game distributions.
    let pair = CoordinatorBuilder::new().seed(seed).build_colocation();
    let (alice, bob) = pair.endpoints();
    let class = |bit: usize| {
        if bit == 1 {
            TaskClass::Colocate
        } else {
            TaskClass::Exclusive
        }
    };
    let mut counts = [0usize; 4];
    for _ in 0..TRIALS {
        let a = alice.decide(class(x));
        let b = !bob.decide(class(y)); // un-flip
        counts[usize::from(a) * 2 + usize::from(b)] += 1;
    }
    counts.map(|c| c as f64 / TRIALS as f64)
}

fn max_diff(a: &[f64; 4], b: &[f64; 4]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn all_three_implementations_agree() {
    for x in 0..2 {
        for y in 0..2 {
            let seed = (x * 2 + y) as u64;
            let exact = dist_exact(x, y, 100 + seed);
            let boxd = dist_box(x, y, 200 + seed);
            let coord = dist_coordinator(x, y, 300 + seed);
            assert!(
                max_diff(&exact, &boxd) < TOL,
                "({x},{y}) exact {exact:?} vs box {boxd:?}"
            );
            assert!(
                max_diff(&exact, &coord) < TOL,
                "({x},{y}) exact {exact:?} vs coordinator {coord:?}"
            );
        }
    }
}

#[test]
fn joint_distributions_match_born_rule() {
    // The analytic Born-rule values for the paper's angles:
    // P(agree | x, y) = cos²(θ_A(x) − θ_B(y)).
    for x in 0..2 {
        for y in 0..2 {
            let exact = dist_exact(x, y, 400 + (x * 2 + y) as u64);
            let agree = exact[0] + exact[3];
            let expect = (alice_angle(x) - bob_angle(y)).cos().powi(2);
            assert!(
                (agree - expect).abs() < TOL,
                "({x},{y}): agree {agree} vs Born {expect}"
            );
        }
    }
}

#[test]
fn marginals_uniform_in_every_implementation() {
    for (name, d) in [
        ("exact", dist_exact(1, 1, 500)),
        ("box", dist_box(1, 1, 501)),
        ("coordinator", dist_coordinator(1, 1, 502)),
    ] {
        let a1 = d[2] + d[3];
        let b1 = d[1] + d[3];
        assert!((a1 - 0.5).abs() < TOL, "{name}: P(a=1) = {a1}");
        assert!((b1 - 0.5).abs() < TOL, "{name}: P(b=1) = {b1}");
    }
}
