//! End-to-end: the full hardware pipeline playing CHSH.
//!
//! Exercises qnet (SPDC source → fiber → QNIC memory) feeding games
//! (CHSH referee) — the complete Figure 1 + Figure 2 story: pairs are
//! distributed ahead of demand, decisions are made at input arrival, and
//! the empirical win rate beats the classical ceiling when the hardware
//! is good enough.

use qnlg::games::chsh::{alice_angle, bob_angle, ChshGame};
use qnlg::games::TwoPlayerGame;
use qnlg::qnet::{ConsumePolicy, DistributorConfig, EntanglementDistributor, EprSource, FiberLink, SimTime};
use qnlg::qsim::Party;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Plays CHSH rounds with pairs pulled from a simulated distribution
/// pipeline; returns (win rate, pair availability).
fn pipeline_chsh(config: DistributorConfig, rounds: usize, seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dist = EntanglementDistributor::new(config, &mut rng);
    let game = ChshGame::standard();
    let mut now = SimTime::ZERO;
    let mut wins = 0usize;
    let mut played = 0usize;
    for _ in 0..rounds {
        now += Duration::from_micros(20); // 50k decisions/s
        let (x, y) = game.sample_inputs(&mut rng);
        let Some(mut pair) = dist.take_pair(now) else {
            continue; // no pair buffered: round skipped (tracked as miss)
        };
        let a = pair
            .measure_angle(Party::A, alice_angle(x), &mut rng)
            .expect("fresh pair");
        let b = pair
            .measure_angle(Party::B, bob_angle(y), &mut rng)
            .expect("fresh pair");
        played += 1;
        wins += usize::from(game.wins(x, y, a == 1, b == 1));
    }
    assert!(played > 100, "too few rounds played for statistics: {played}/{rounds}");
    (
        wins as f64 / played as f64,
        dist.stats().availability(),
    )
}

#[test]
fn good_hardware_beats_classical_ceiling() {
    let config = DistributorConfig {
        source: EprSource::new(1e6, 0.98),
        link_a: FiberLink::new(0.5),
        link_b: FiberLink::new(0.5),
        qnic_capacity: 8,
        memory_lifetime: Duration::from_micros(100),
        max_age: Duration::from_micros(50),
        consume_policy: ConsumePolicy::FreshestFirst,
        faults: qnet::FaultPlan::none(),
        emission: qnlg::qnet::EmissionMode::Batched,
    };
    let (rate, availability) = pipeline_chsh(config, 8_000, 1);
    assert!(availability > 0.9, "availability {availability}");
    assert!(
        rate > 0.78,
        "win rate {rate} should clearly beat the classical 0.75"
    );
}

#[test]
fn poor_visibility_hardware_loses_the_advantage() {
    // Source visibility 0.6 < 1/√2: quantum pairs are worse than the
    // classical strategy — the §3 error-margin caveat end-to-end.
    let config = DistributorConfig {
        source: EprSource::new(1e6, 0.6),
        link_a: FiberLink::new(0.5),
        link_b: FiberLink::new(0.5),
        qnic_capacity: 8,
        memory_lifetime: Duration::from_micros(100),
        max_age: Duration::from_micros(50),
        consume_policy: ConsumePolicy::FreshestFirst,
        faults: qnet::FaultPlan::none(),
        emission: qnlg::qnet::EmissionMode::Batched,
    };
    let (rate, _) = pipeline_chsh(config, 8_000, 2);
    assert!(rate < 0.75, "win rate {rate} must fall below classical");
}

#[test]
fn long_storage_degrades_win_rate() {
    // Allowing pairs to age to ~2τ before use: storage dephasing eats
    // the advantage even with a perfect source.
    let fresh = DistributorConfig {
        source: EprSource::new(1e6, 1.0),
        link_a: FiberLink::new(0.0),
        link_b: FiberLink::new(0.0),
        qnic_capacity: 4, // small buffer: pairs consumed fresh
        memory_lifetime: Duration::from_micros(100),
        max_age: Duration::from_micros(30),
        consume_policy: ConsumePolicy::FreshestFirst,
        faults: qnet::FaultPlan::none(),
        emission: qnlg::qnet::EmissionMode::Batched,
    };
    let stale = DistributorConfig {
        qnic_capacity: 512, // deep buffer: FIFO consumption of old pairs
        max_age: Duration::from_micros(400),
        consume_policy: ConsumePolicy::OldestFirst,
        ..fresh.clone()
    };
    let (fresh_rate, _) = pipeline_chsh(fresh, 6_000, 3);
    let (stale_rate, _) = pipeline_chsh(stale, 6_000, 4);
    assert!(
        fresh_rate > stale_rate + 0.02,
        "fresh {fresh_rate} should beat stale {stale_rate}"
    );
}

#[test]
fn lossy_fiber_reduces_availability_not_correctness() {
    // 50 km links: 1% of pairs survive (10% per half), so delivery
    // (~2k pairs/s) cannot keep up with 50k decisions/s — availability
    // drops, but the pairs that do survive play optimally.
    let config = DistributorConfig {
        source: EprSource::new(2e5, 1.0),
        link_a: FiberLink::new(50.0),
        link_b: FiberLink::new(50.0),
        qnic_capacity: 16,
        memory_lifetime: Duration::from_micros(100),
        max_age: Duration::from_micros(60),
        consume_policy: ConsumePolicy::FreshestFirst,
        faults: qnet::FaultPlan::none(),
        emission: qnlg::qnet::EmissionMode::Batched,
    };
    let (rate, availability) = pipeline_chsh(config, 20_000, 5);
    assert!(availability < 1.0);
    assert!(rate > 0.8, "surviving pairs play optimally: {rate}");
}
