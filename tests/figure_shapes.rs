//! Shape checks for the paper's two figures, at reduced Monte-Carlo
//! budget: who wins, roughly by how much, and where the knee falls.
//! (The full-budget versions are `repro fig3` / `repro fig4`.)

use qnlg::games::graph::advantage_probability;
use qnlg::loadbalance::metrics::knee_load;
use qnlg::loadbalance::sim::load_sweep;
use qnlg::loadbalance::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fig3_shape_zero_at_extremes_high_in_middle() {
    let mut rng = StdRng::seed_from_u64(31);
    let p0 = advantage_probability(5, 0.0, 20, 1e-4, &mut rng);
    let p_mid = advantage_probability(5, 0.5, 30, 1e-4, &mut rng);
    assert_eq!(p0, 0.0, "all-affinity graphs are classically perfect");
    assert!(
        p_mid > 0.35,
        "mid-range advantage probability {p_mid} too low"
    );
}

#[test]
fn fig3_caption_more_vertices_more_advantage() {
    // "The probability of achieving a quantum advantage increases with
    // the number of vertices" — compare 3 vs 6 vertices at p = 0.5.
    let mut rng = StdRng::seed_from_u64(32);
    let p3 = advantage_probability(3, 0.5, 40, 1e-4, &mut rng);
    let p6 = advantage_probability(6, 0.5, 40, 1e-4, &mut rng);
    assert!(
        p6 > p3,
        "6-vertex advantage rate {p6} should exceed 3-vertex {p3}"
    );
}

#[test]
fn fig4_quantum_knee_strictly_later() {
    let loads = [0.9, 1.0, 1.05, 1.1, 1.15];
    let mut rng = StdRng::seed_from_u64(33);
    let classical = load_sweep(Strategy::UniformRandom, &loads, &mut rng);
    let quantum = load_sweep(Strategy::quantum_ideal(), &loads, &mut rng);

    let ck = knee_load(&classical, 5.0).expect("classical must saturate in range");
    // If quantum never crosses in range it is strictly later than
    // classical by definition.
    if let Some(qk) = knee_load(&quantum, 5.0) {
        assert!(qk > ck, "quantum knee {qk} vs classical {ck}");
    }

    // And pointwise dominance at and past the classical knee.
    for ((load, cq), (_, qq)) in classical.iter().zip(&quantum) {
        if *load >= ck {
            assert!(
                qq < cq,
                "at load {load}: quantum {qq} must be below classical {cq}"
            );
        }
    }
}

#[test]
fn fig4_quantum_beats_every_classical_pairing_at_the_knee() {
    // In the knee region the quantum pairing beats BOTH classical pairing
    // extremes — not just naive random. (In deep saturation, match-types
    // catches up: its 100% CC-co-location maximizes raw C-throughput and
    // EE collisions stop costing anything once queues never drain. That
    // crossover is measured and documented in EXPERIMENTS.md E2; the
    // paper's Pareto-frontier claim is about the knee region, where
    // placement quality — not raw throughput — is what matters.)
    let loads = [1.0, 1.05];
    let mut rng = StdRng::seed_from_u64(34);
    let quantum = load_sweep(Strategy::quantum_ideal(), &loads, &mut rng);
    let split = load_sweep(Strategy::PairedAlwaysSplit, &loads, &mut rng);
    let match_types = load_sweep(Strategy::PairedMatchTypes, &loads, &mut rng);
    for i in 0..loads.len() {
        let (load, q) = quantum[i];
        assert!(
            q < split[i].1,
            "at load {load}: quantum {q} vs always-split {}",
            split[i].1
        );
        assert!(
            q < match_types[i].1,
            "at load {load}: quantum {q} vs match-types {}",
            match_types[i].1
        );
    }
}
