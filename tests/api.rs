//! Public-API integration tests: the library as a downstream user would
//! hold it — concurrent endpoints, graph-driven coordinators, error
//! surfaces.

use qnlg::games::AffinityGraph;
use qnlg::qnlg_core::{CoordinatorBuilder, CoreError, TaskClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread;

#[test]
fn endpoints_work_across_threads() {
    // Each endpoint lives on its own thread — the deployment shape (one
    // load balancer per machine). Decisions happen concurrently.
    let pair = CoordinatorBuilder::new().seed(9).build_colocation();
    let (alice, bob) = pair.endpoints();
    // Stay below MAX_ROUND_AHEAD so a fast thread can fully outrun a slow
    // one without tripping the overrun guard.
    let rounds = 3_000;

    let handle_a = thread::spawn(move || {
        (0..rounds).map(|_| alice.decide(TaskClass::Colocate)).collect::<Vec<bool>>()
    });
    let handle_b = thread::spawn(move || {
        (0..rounds).map(|_| bob.decide(TaskClass::Colocate)).collect::<Vec<bool>>()
    });
    let a = handle_a.join().expect("alice thread");
    let b = handle_b.join().expect("bob thread");

    let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
    let f = agree as f64 / rounds as f64;
    let expect = qnlg::games::chsh_quantum_value();
    assert!(
        (f - expect).abs() < 0.03,
        "cross-thread CC agreement {f} vs {expect}"
    );
}

#[test]
fn coordinator_is_deterministic_given_seed() {
    let run = || {
        let pair = CoordinatorBuilder::new().seed(1234).build_colocation();
        let (a, b) = pair.endpoints();
        (0..200)
            .map(|i| {
                let class = if i % 3 == 0 {
                    TaskClass::Colocate
                } else {
                    TaskClass::Exclusive
                };
                (a.decide(class), b.decide(class))
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn affinity_coordinator_on_random_graphs() {
    // Build coordinators for assorted random graphs; whenever the solver
    // reports an advantage, the empirical win rate must beat classical.
    let mut rng = StdRng::seed_from_u64(21);
    let mut advantaged = 0;
    for trial in 0..4 {
        let graph = AffinityGraph::random(4, 0.4, &mut rng);
        let coord = CoordinatorBuilder::new().seed(trial).build_affinity(&graph);
        let (a, b) = coord.endpoints();
        let rounds = 20_000;
        let mut wins = 0usize;
        for _ in 0..rounds {
            let x = rng.gen_range(0..4);
            let y = rng.gen_range(0..4);
            let da = a.decide(x).expect("in range");
            let db = b.decide(y).expect("in range");
            wins += usize::from((da != db) == graph.is_exclusive(x, y));
        }
        let f = wins as f64 / rounds as f64;
        assert!(
            (f - coord.quantum_value).abs() < 0.02,
            "trial {trial}: rate {f} vs solved {}",
            coord.quantum_value
        );
        if coord.has_quantum_advantage() {
            advantaged += 1;
            assert!(f > coord.classical_value, "trial {trial}");
        }
    }
    let _ = advantaged; // advantage presence depends on the draw; rate check above is the contract
}

#[test]
fn error_paths_are_reported() {
    let graph = AffinityGraph::from_edges(3, &[(0, 1, true)]);
    let coord = CoordinatorBuilder::new().build_affinity(&graph);
    let (a, _b) = coord.endpoints();
    assert!(matches!(
        a.decide(7),
        Err(CoreError::UnknownTaskClass { vertex: 7, n_classes: 3 })
    ));
}

#[test]
fn umbrella_reexports_compose() {
    // Spot-check that the umbrella crate exposes each layer.
    let _ = qnlg::qsim::bell::phi_plus();
    let _ = qnlg::games::XorGame::chsh();
    let _ = qnlg::qnet::EprSource::typical_room_temperature();
    let _ = qnlg::ecmp::pigeonhole_lower_bound(4);
    let _ = qnlg::qmath::C64::I;
    assert!(!qnlg::VERSION.is_empty());
}
