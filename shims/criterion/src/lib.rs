//! Offline stand-in for `criterion`.
//!
//! Same macro/API surface as the subset the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, groups, `bench_with_input`,
//! `Bencher::iter`), implemented as a plain wall-clock harness: warm up
//! briefly, auto-scale the iteration count to a target measurement
//! window, report ns/iter (median of samples). No statistics engine, no
//! HTML reports — the point is comparable numbers from `cargo bench`
//! with zero external dependencies.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies a parameterized benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median ns/iter over the measurement samples, filled by `iter`.
    result_ns: f64,
    samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that runs
        // ~10ms, so Instant overhead is negligible.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || n >= 1 << 30 {
                break;
            }
            n = if elapsed.is_zero() {
                n * 64
            } else {
                let scale = Duration::from_millis(12).as_nanos() as f64
                    / elapsed.as_nanos().max(1) as f64;
                ((n as f64 * scale) as u64).max(n + 1)
            };
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / n as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        result_ns: f64::NAN,
        samples,
    };
    f(&mut b);
    let ns = b.result_ns;
    let human = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    };
    println!("{label:<48} time: {human}/iter");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; keep the shim's floor small but sane.
        self.samples = n.clamp(3, 100);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.samples, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 11 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, self.samples, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * black_box(n))
        });
        group.finish();
    }

    criterion_group!(smoke, tiny_bench);

    #[test]
    fn harness_runs_and_reports() {
        smoke();
    }
}
