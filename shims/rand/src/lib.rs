//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *API subset it actually uses* behind the same paths (`rand::Rng`,
//! `rand::rngs::StdRng`, …). Generators are deterministic and seeded
//! explicitly everywhere in this workspace, so the only contract that
//! matters is "good statistical quality + stable streams", not
//! bit-compatibility with upstream `rand`'s ChaCha12-based `StdRng`.
//!
//! `StdRng` here is xoshiro256++ (Blackman–Vigna), seeded through
//! SplitMix64 exactly as the xoshiro reference code recommends. It passes
//! BigCrush and is more than adequate for the Monte-Carlo workloads in
//! this repository.

use std::ops::Range;

/// Core entropy source: the object-safe subset of upstream `RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from raw generator output (upstream's
/// `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $next:ident),+ $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$next() as $t
            }
        }
    )+};
}
impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Half-open ranges samplable via `Rng::gen_range` (upstream's
/// `SampleRange`).
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style widening multiply: bias < 2^-64 per draw,
                // immaterial for Monte-Carlo use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )+};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )+};
}
impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator
/// (including `dyn RngCore` trait objects, as upstream does).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Explicitly seedable generators.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives a full seed from one `u64` via SplitMix64 (the xoshiro
    /// authors' recommended seeding procedure).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            state = z;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
    /// every consumer in this workspace seeds explicitly and asserts
    /// statistics, not exact streams, so the swap is behavior-preserving.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 0xbf58_476d_1ce4_e5b9, 1, 2];
            }
            StdRng { s }
        }
    }

    /// Alias: this workspace never needs a distinct small generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/choosing (upstream `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 1_000.0,
                "bucket {i}: {c}"
            );
        }
    }

    #[test]
    fn gen_range_signed_and_float() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn bool_is_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..50_000).filter(|_| rng.gen::<bool>()).count();
        assert!((heads as f64 - 25_000.0).abs() < 1_000.0, "heads {heads}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynref: &mut dyn RngCore = &mut rng;
        let x: f64 = dynref.gen();
        assert!((0.0..1.0).contains(&x));
        let k = dynref.gen_range(0..10usize);
        assert!(k < 10);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
