//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use — range /
//! tuple / `Just` / `prop_oneof!` / mapped strategies, fixed-length
//! `collection::vec`, `any::<bool>()`, and the `proptest!` test macro —
//! as plain deterministic random sampling. There is **no shrinking**: a
//! failing case panics with its case index and the generator seed is a
//! pure function of the test name, so failures reproduce exactly on
//! re-run. Property tests here are invariant checks over tolerances, so
//! shrinking is a debugging convenience, not a correctness requirement.

use rand::rngs::StdRng;

pub mod strategy {
    use super::StdRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A value generator. Object-safe (`sample` takes the concrete
    /// workspace generator) so `prop_oneof!` can mix strategy types.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Helper with inferred value type, used by `prop_oneof!`.
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let k = rng.gen_range(0..self.options.len());
            self.options[k].sample(rng)
        }
    }

    macro_rules! impl_strategy_for_range {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }
    impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_strategy_for_tuple {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_strategy_for_tuple!(A.0);
    impl_strategy_for_tuple!(A.0, B.1);
    impl_strategy_for_tuple!(A.0, B.1, C.2);
    impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
    impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);

    /// `any::<T>()` — the full domain of `T` (implemented for the types
    /// the workspace requests).
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open
    /// range of sizes (mirrors proptest's `SizeRange` conversions).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Vector of independently sampled elements with sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo == 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod config {
    /// Per-block test configuration (`cases` is the only knob used here).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// FNV-1a of the test name: a stable per-test seed so every run samples
/// the identical case sequence (failures reproduce without a seed file).
pub fn seed_for_test_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::config::ProptestConfig = $cfg;
            let __seed = $crate::seed_for_test_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                let _ = __case;
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+
                );
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::config::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, f in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            vals in collection::vec(0.0f64..1.0, 7),
            pair in (0u8..4, 0u8..4).prop_map(|(a, b)| (a, b)))
        {
            prop_assert_eq!(vals.len(), 7);
            prop_assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        #[test]
        fn oneof_yields_every_arm_eventually(choice in prop_oneof![
            Just(0usize),
            Just(1usize),
            (2usize..4).prop_map(|v| v),
        ]) {
            prop_assert!(choice < 4);
        }

        #[test]
        fn any_bool_works(b in any::<bool>()) {
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(
            crate::seed_for_test_name("a::one"),
            crate::seed_for_test_name("a::two")
        );
    }
}
