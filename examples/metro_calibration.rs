//! Metropolitan-scale deployment: entanglement swapping + calibration.
//!
//! Two datacenters 40 km apart want CHSH-coordinated load balancing. A
//! single 40 km fiber loses ~84% of photons, so a midpoint repeater node
//! swaps two 20 km pairs into one end-to-end pair (§3 cites exactly this
//! architecture [62, 63]). Before enabling the quantum strategy, the
//! operators run **state tomography** on a sample of delivered pairs to
//! estimate the visibility and check it clears the CHSH threshold 1/√2.
//!
//! Run with: `cargo run --release --example metro_calibration`

use qnlg::games::chsh::{ChshGame, QuantumChshStrategy};
use qnlg::games::game::empirical_win_rate;
use qnlg::games::ChshVariant;
use qnlg::qnet::swap::{entanglement_swap, max_useful_hops};
use qnlg::qsim::noise::{werner, WERNER_CHSH_THRESHOLD};
use qnlg::qsim::{tomography, SharedPair};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    // Each 20 km segment delivers Werner pairs at v = 0.92 (source
    // imperfection + transmission dephasing).
    let segment_visibility = 0.92;
    println!("Per-segment pair visibility: {segment_visibility}");

    // The midpoint swaps two segment pairs into one end-to-end pair.
    let seg = werner(segment_visibility).expect("valid visibility");
    let sample = entanglement_swap(&seg, &seg, &mut rng).expect("2-qubit pairs");
    let v_expected = segment_visibility * segment_visibility;
    println!(
        "After one swap, expected end-to-end visibility: {v_expected:.4} (v₁·v₂)"
    );

    // Calibration: tomography on 9 × 2000 sampled pairs.
    println!("\nRunning Pauli tomography on 18,000 delivered pairs…");
    let swapped_state = sample.pair.clone();
    let data = tomography::collect(
        || SharedPair::from_density(swapped_state.clone()).expect("two qubits"),
        2_000,
        &mut rng,
    )
    .expect("valid pairs");
    let rho = data.reconstruct().expect("physical reconstruction");
    let v_measured = tomography::werner_visibility(&rho).expect("two qubits");
    println!("  measured visibility: {v_measured:.4}");
    println!("  CHSH threshold     : {WERNER_CHSH_THRESHOLD:.4} (1/√2)");

    let usable = v_measured > WERNER_CHSH_THRESHOLD;
    println!(
        "  verdict            : {}",
        if usable {
            "ENABLE quantum strategy"
        } else {
            "fall back to classical"
        }
    );
    assert!(usable, "0.92² ≈ 0.846 clears the threshold");

    // Confirm end-to-end: play CHSH over the swapped pairs.
    let pair_state = sample.pair.clone();
    let mut strategy = QuantumChshStrategy::with_source(
        move || SharedPair::from_density(pair_state.clone()).expect("two qubits"),
        ChshVariant::Standard,
    );
    let rate = empirical_win_rate(&ChshGame::standard(), &mut strategy, 100_000, &mut rng);
    let theory = 0.5 + v_expected * std::f64::consts::SQRT_2 / 4.0;
    println!("\nCHSH over swapped pairs: win rate {rate:.4} (theory {theory:.4})");
    assert!(rate > 0.75, "swapped pairs must still beat classical");

    // Capacity planning: how far can this architecture reach?
    println!(
        "\nHop budget at v = {segment_visibility} per link: {} swaps before \
         the advantage dies",
        max_useful_hops(segment_visibility)
    );
    println!("\n✓ repeater-extended coordination verified and calibrated");
}
