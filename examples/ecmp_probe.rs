//! ECMP routing: demonstrating the paper's NEGATIVE result (§4.2).
//!
//! 3 switches, 2 equal-cost paths, 2 switches active per round (nobody
//! knows which). Can entanglement reduce collisions below classical
//! randomization? The paper proves N-way entanglement reduces to M-way
//! (no-signaling), and conjectures no advantage at all. This example
//! verifies both numerically.
//!
//! Run with: `cargo run --release --example ecmp_probe`

use qnlg::ecmp::model::run_rounds;
use qnlg::ecmp::search::{exhaustive_quantum_search, pigeonhole_lower_bound};
use qnlg::ecmp::strategy::{
    EntangledStateKind, GlobalEntangled, IidRandom, SharedPermutation,
};
use qnlg::ecmp::{reduction_deviation, EcmpScenario};
use qnlg::qsim::bell;
use qnlg::qsim::measure::Basis1;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let scenario = EcmpScenario::minimal();
    let rounds = 60_000;

    println!("== Part 1: the no-signaling reduction =======================");
    println!("GHZ(3): does switch C's measurement disturb the A-B joint");
    println!("outcome distribution? (paper: provably NO)\n");
    let state = bell::ghz(3);
    let mut worst: f64 = 0.0;
    for ta in [0.0, 0.6, 1.2] {
        for tb in [0.3, 0.9] {
            for tc in [0.0, 0.7, 1.5] {
                let dev = reduction_deviation(
                    &state,
                    &Basis1::angle(ta),
                    &Basis1::angle(tb),
                    &Basis1::angle(tc),
                )
                .expect("3-qubit state");
                worst = worst.max(dev);
            }
        }
    }
    println!("  max deviation over 18 basis combinations: {worst:.2e}");
    assert!(worst < 1e-10);
    println!("  ✓ invariant to machine precision — global entanglement");
    println!("    reduces to pairwise + shared randomness\n");

    println!("== Part 2: collision probabilities ==========================");
    println!("scenario: N=3 switches, M=2 paths, K=2 active (unknown)\n");

    let mut iid = IidRandom;
    let s1 = run_rounds(scenario, &mut iid, rounds, &mut rng);
    let mut perm = SharedPermutation::new(3, 2, &mut rng);
    let s2 = run_rounds(scenario, &mut perm, rounds, &mut rng);
    let mut ghz_spread =
        GlobalEntangled::new(EntangledStateKind::Ghz, vec![0.0, 2.094, 4.189]);
    let s3 = run_rounds(scenario, &mut ghz_spread, rounds, &mut rng);

    println!("  {:<24}{:>12}", "strategy", "P(collision)");
    println!("  {:<24}{:>12.4}", "iid-random", s1.collision_probability);
    println!("  {:<24}{:>12.4}", "shared-permutation", s2.collision_probability);
    println!("  {:<24}{:>12.4}", "ghz-entangled (spread)", s3.collision_probability);
    println!(
        "  {:<24}{:>12.4}  ← provable floor for ANY strategy",
        "pigeonhole bound",
        pigeonhole_lower_bound(3)
    );

    println!("\n== Part 3: strategy search ==================================");
    let result = exhaustive_quantum_search(60, 4_000, &mut rng);
    println!(
        "  searched {} quantum strategies (GHZ/W × angle grids + random)",
        result.evaluated
    );
    println!("  best quantum found : {:.4}", result.best_quantum);
    println!("  classical optimum  : {:.4}", result.classical);
    assert!(result.best_quantum >= result.classical - 0.02);
    println!("\n✓ no quantum strategy beat classical randomization — the");
    println!("  paper's conjecture holds on every instance searched");
}
