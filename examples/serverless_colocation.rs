//! Serverless-function load balancing (the paper's Figure 4 scenario).
//!
//! 100 load balancers forward serverless-function invocations to backend
//! workers every timestep. Warm-start invocations (type-C) run two-at-a-
//! time on a worker that already has the runtime image; cold/exclusive
//! invocations (type-E) need a worker to themselves. Compare queue growth
//! under classical and quantum-assisted balancing as load rises.
//!
//! Run with: `cargo run --release --example serverless_colocation`

use qnlg::loadbalance::{run_simulation, SimConfig, Strategy};
use qnlg::loadbalance::task::BernoulliWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let loads = [0.8, 1.0, 1.1, 1.2, 1.3, 1.4];
    let strategies = [
        ("uniform-random   ", Strategy::UniformRandom),
        ("round-robin      ", Strategy::RoundRobin),
        ("paired-split     ", Strategy::PairedAlwaysSplit),
        ("paired-quantum   ", Strategy::quantum_ideal()),
    ];

    println!("Average queue length per worker vs load (N = 100 balancers)\n");
    print!("{:<18}", "strategy \\ N/M");
    for load in loads {
        print!("{load:>9.2}");
    }
    println!();

    let mut rows: Vec<(&str, Vec<f64>)> = Vec::new();
    for (label, strategy) in strategies {
        let mut row = Vec::new();
        for &load in &loads {
            let config = SimConfig::paper(load);
            let mut workload = BernoulliWorkload::paper();
            let result = run_simulation(config, strategy, &mut workload, &mut rng);
            row.push(result.avg_queue_len);
        }
        rows.push((label, row));
    }
    for (label, row) in &rows {
        print!("{label:<18}");
        for v in row {
            print!("{v:>9.3}");
        }
        println!();
    }

    // The headline: at loads past the classical knee, quantum queues are
    // strictly shorter.
    let classical = &rows[0].1;
    let quantum = &rows[3].1;
    let idx = loads.iter().position(|&l| l == 1.2).expect("load in sweep");
    println!(
        "\nAt N/M = 1.2: classical queue {:.2}, quantum queue {:.2} ({:.0}% shorter)",
        classical[idx],
        quantum[idx],
        100.0 * (1.0 - quantum[idx] / classical[idx])
    );
    assert!(quantum[idx] < classical[idx]);
}
