//! Quickstart: coordination without communication.
//!
//! Two load balancers, far apart, each receive a request and must decide —
//! immediately, without talking to each other — which of two servers to
//! use. Requests that co-locate well (type-C) should land together;
//! requests that want isolation (type-E) should land apart.
//!
//! Run with: `cargo run --example quickstart`

use qnlg::qnlg_core::{CoordinatorBuilder, TaskClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2025);

    // The entanglement source distributes correlated decision capability
    // ahead of time (paper Fig. 1). One endpoint per balancer.
    let coordinator = CoordinatorBuilder::new().seed(7).build_colocation();
    let (alice, bob) = coordinator.endpoints();

    println!("Playing 100,000 coordination rounds (quantum, CHSH-optimal)…\n");

    let rounds = 100_000;
    let mut correct = 0usize;
    let mut per_case = [[0usize; 2]; 4]; // [case][correct?]

    for _ in 0..rounds {
        // Inputs arrive independently at each balancer.
        let task_a = if rng.gen() { TaskClass::Colocate } else { TaskClass::Exclusive };
        let task_b = if rng.gen() { TaskClass::Colocate } else { TaskClass::Exclusive };

        // Each endpoint decides LOCALLY — zero network latency, no
        // knowledge of the peer's input.
        let a = alice.decide(task_a);
        let b = bob.decide(task_b);

        // Goal: same decision iff both tasks are type-C.
        let want_same = task_a == TaskClass::Colocate && task_b == TaskClass::Colocate;
        let ok = (a == b) == want_same;
        correct += usize::from(ok);
        let case = (task_a == TaskClass::Colocate) as usize * 2
            + (task_b == TaskClass::Colocate) as usize;
        per_case[case][usize::from(ok)] += 1;
    }

    let rate = correct as f64 / rounds as f64;
    println!("  overall success rate: {rate:.4}");
    println!("  quantum optimum     : {:.4}  (cos²(π/8))", qnlg::games::chsh_quantum_value());
    println!("  classical optimum   : {:.4}  (provable ceiling without communication)\n", 0.75);

    let labels = ["E,E", "E,C", "C,E", "C,C"];
    println!("  per-case success (goal: C,C → same server; otherwise different):");
    for (i, label) in labels.iter().enumerate() {
        let total = per_case[i][0] + per_case[i][1];
        if total > 0 {
            println!(
                "    {label}: {:.4}",
                per_case[i][1] as f64 / total as f64
            );
        }
    }

    assert!(rate > 0.8, "quantum coordination should beat the classical 0.75");
    println!("\n✓ beat the classical ceiling without exchanging a single message");
}
