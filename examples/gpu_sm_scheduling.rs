//! GPU streaming-multiprocessor (SM) work placement with multi-class
//! affinity.
//!
//! The paper's intro motivates exactly this: "GPUs aim to map requests
//! referencing the same texture or memory region to the same SM to
//! maximize data locality, while distributing unrelated requests across
//! SMs." With more than two request classes, the two-party CHSH game
//! generalizes to an XOR game on an affinity graph (§4.1, "XOR games").
//!
//! Here: five request classes — three texture-draw streams and two
//! kernels. Draws referencing the same texture co-locate; the two kernels
//! must not share an SM, the bandwidth kernel contends with the heaviest
//! draw stream, and the latency-critical kernel contends with stream A.
//! This particular affinity graph is *frustrated*: no classical
//! assignment satisfies it everywhere (classical value 0.76), but the
//! optimal quantum strategy reaches ≈ 0.824. The graph's XOR game is
//! solved once at startup, then two work distributors coordinate
//! placements with zero communication.
//!
//! Part two scales past two front-ends: a whole rack of N GPU servers
//! shares a noisy GHZ state (the closed-form `qsim::ghz` kernel) and
//! coordinates a global SM placement-mode flip through the n-player
//! Mermin parity game — perfectly at unit visibility, and still above
//! every classical scheme down to visibility `2^{1−⌈n/2⌉}`.
//!
//! Run with: `cargo run --release --example gpu_sm_scheduling`

use qnlg::games::multiparty::{
    mermin_classical_bound, mermin_crossover_visibility, play_mermin_batch,
};
use qnlg::games::AffinityGraph;
use qnlg::qnlg_core::CoordinatorBuilder;
use qnlg::qsim::ghz::NoisyGhz;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Vertices: 0..=2 texture-draw streams A, B, C;
    //           3 = bandwidth-hungry kernel, 4 = latency-critical kernel.
    // Exclusive (keep-apart) edges; everything else co-locates fine.
    let graph = AffinityGraph::from_edges(
        5,
        &[
            (0, 4, true), // stream A thrashes the latency kernel's cache
            (2, 3, true), // stream C and the bandwidth kernel contend
            (3, 4, true), // the two kernels must never share an SM
        ],
    );

    let coordinator = CoordinatorBuilder::new().seed(3).build_affinity(&graph);
    println!("XOR game for the SM-affinity graph (5 request classes):");
    println!("  classical value: {:.4}", coordinator.classical_value);
    println!("  quantum value  : {:.4}", coordinator.quantum_value);
    println!(
        "  quantum advantage: {}\n",
        if coordinator.has_quantum_advantage() { "YES" } else { "no" }
    );
    assert!(coordinator.has_quantum_advantage());

    let (front_end_0, front_end_1) = coordinator.endpoints();
    let mut rng = StdRng::seed_from_u64(77);

    // Stream random request pairs through the two front-ends and score
    // placement quality: "correct" = same SM for affine pairs, different
    // SMs for exclusive pairs.
    let rounds = 200_000;
    let mut correct_quantum = 0usize;
    for _ in 0..rounds {
        let x = rng.gen_range(0..5);
        let y = rng.gen_range(0..5);
        let a = front_end_0.decide(x).expect("valid class");
        let b = front_end_1.decide(y).expect("valid class");
        let want_differ = graph.is_exclusive(x, y);
        correct_quantum += usize::from((a != b) == want_differ);
    }
    let q_rate = correct_quantum as f64 / rounds as f64;

    println!("placement quality over {rounds} request pairs:");
    println!("  quantum coordination : {q_rate:.4}");
    println!(
        "  classical ceiling    : {:.4} (exact, by enumeration of all\n                           deterministic strategies)",
        coordinator.classical_value
    );
    assert!(
        q_rate > coordinator.classical_value + 0.01,
        "quantum placements must clearly beat the exact classical ceiling"
    );
    println!("\n✓ SM placements beat the classical ceiling with zero coordination traffic");

    // Part two: a rack of N GPU servers coordinating a global placement
    // decision. Each server sees one local congestion bit (its input);
    // when an even number of servers are congested, the XOR of their
    // one-bit placement decisions must track (congested mod 4)/2 — the
    // Mermin promise, which GHZ-sharing servers satisfy with certainty
    // and classical racks can only hit with probability 1/2 + 2^{−⌈n/2⌉}.
    println!("\nrack-scale: N servers flipping SM placement mode in lockstep");
    println!("  (noisy-GHZ kernel, 100k game rounds per cell)\n");
    println!("  n   visibility  win rate  classical ceiling  crossover v*");
    let rounds = 100_000;
    for n in [3usize, 6, 10] {
        let ceiling = mermin_classical_bound(n);
        let crossover = mermin_crossover_visibility(n);
        for v in [1.0, 0.8, crossover] {
            let kernel = NoisyGhz::new(n, v).expect("valid visibility");
            let batch = play_mermin_batch(&kernel, rounds, &mut rng);
            println!(
                "  {n:<3} {v:<11.4} {:<9.4} {ceiling:<18.4} {crossover:.4}",
                batch.win_rate()
            );
            if v == 1.0 {
                assert_eq!(batch.wins, batch.rounds, "ideal GHZ coordination is perfect");
            }
            if v > crossover + 0.05 {
                assert!(
                    batch.win_rate() > ceiling,
                    "n = {n}, v = {v}: must beat the classical rack"
                );
            }
        }
    }
    println!(
        "\n✓ the advantage window widens with the rack: v*(3) = {:.3} but v*(10) = {:.3}",
        mermin_crossover_visibility(3),
        mermin_crossover_visibility(10)
    );
}
