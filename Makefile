# Local mirror of .github/workflows/ci.yml — `make ci` is the gate a
# change must pass before it lands.

CARGO ?= cargo

.PHONY: ci build test clippy bench-sweep

ci: build test clippy

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Spawn-per-point vs pooled executor + CorrelationBox sampling kernels.
bench-sweep:
	$(CARGO) bench -p qnlg-bench --bench sweep
