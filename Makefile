# Local mirror of .github/workflows/ci.yml — `make ci` is the gate a
# change must pass before it lands.

CARGO ?= cargo

.PHONY: ci build test clippy bench-sweep repro-quick

ci: build test clippy repro-quick

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Spawn-per-point vs pooled executor + CorrelationBox sampling kernels
# + obs on/off overhead.
bench-sweep:
	$(CARGO) bench -p qnlg-bench --bench sweep

# CI-budget reproduction of every experiment, with schema-validated
# JSON-lines artifacts in artifacts/. Fails if any acceptance check fails.
repro-quick:
	$(CARGO) run --release -p qnlg-bench --bin repro -- all --quick --json --out artifacts/
	$(CARGO) run --release -p qnlg-bench --bin repro -- check-artifacts artifacts/
