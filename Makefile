# Local mirror of .github/workflows/ci.yml — `make ci` is the gate a
# change must pass before it lands.

CARGO ?= cargo

.PHONY: ci build test clippy bench-compile bench-sweep bench-xor bench-plane bench-scale bench-trace bench-ghz bench-topology bench-serve repro-quick trace-quick perf-diff test-stat test-topology test-serve serve-soak

ci: build test clippy bench-compile repro-quick

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# All bench harnesses must keep building even when not run.
bench-compile:
	$(CARGO) bench --no-run

# Spawn-per-point vs pooled executor + CorrelationBox sampling kernels
# + obs on/off overhead.
bench-sweep:
	$(CARGO) bench -p qnlg-bench --bench sweep

# XOR solver-pipeline ablation: naive/Gray classical, cold/warm solver,
# and the end-to-end fig3-quick seed-stack vs cached fast-stack numbers
# recorded in DESIGN.md §5.
bench-xor:
	$(CARGO) bench -p qnlg-bench --bench xor_value

# Entanglement data-plane ablation: Werner kernel vs exact oracle,
# batched (survivor-process) vs per-emission sampling, calendar wheel vs
# binary heap — the DESIGN.md §5 batched-plane rows.
bench-plane:
	$(CARGO) bench -p qnlg-bench --bench plane

# Sharded-SoA load-balance engine ablation: frozen AoS loop vs SoA
# single-shard vs sharded (data layout vs parallel machinery), plus the
# obs on/off overhead arm — the DESIGN.md §5 fig4-scale rows.
bench-scale:
	$(CARGO) bench -p qnlg-bench --bench scale

# Trace-overhead ablation: the disabled gate (one relaxed bool load)
# against no call at all — must be free — plus the batched-plane step
# traced vs untraced (the cost of --trace runs). Numbers in DESIGN.md §5.
bench-trace:
	$(CARGO) bench -p qnlg-bench --bench trace

# Multiparty-round ablation: exact GHZ statevector vs closed-form noisy
# kernel vs batched kernel play, at n = 3/6/10 — the DESIGN.md §5 ghz
# rows (acceptance bar: kernel ≥5x over statevector at n = 3).
bench-ghz:
	$(CARGO) bench -p qnlg-bench --bench ghz

# Chain-evaluation ablation: closed-form end-to-end visibility vs the
# hop-by-hop density-matrix oracle (acceptance bar: ≥5x at h = 4), plus
# the full route+schedule+sample epoch on the fanout-8 star — the
# DESIGN.md §5 topology rows.
bench-topology:
	$(CARGO) bench -p qnlg-bench --bench topology

# Served decision-path ablation: pre-drawn SPSC ring vs the same slots
# handed through a Mutex<VecDeque> (ring-vs-lock knob) vs drawing each
# slot on demand (buffering knob) — the DESIGN.md §5 qnlg-serve rows
# (acceptance bar: SPSC ≥3x over the mutex/draw-on-demand baseline).
bench-serve:
	$(CARGO) bench -p qnlg-bench --bench serve

# The qnlg-serve battery: SPSC ring property tests, the zero-alloc
# counting-allocator gate, the in-process + Unix-socket service tests,
# the E11 experiment's own checks, and the BENCH_serve.json
# determinism arm.
test-serve:
	$(CARGO) test -p qnlg-serve
	$(CARGO) test -p qnlg-bench --lib serve
	$(CARGO) test -p qnlg-bench --test determinism serve

# Open-ended wall-clock soak of the serve hot path (Ctrl-C to stop;
# finishes the current round, then writes the artifact with the
# measured decisions/sec and latency percentiles).
serve-soak:
	$(CARGO) run --release -p qnlg-bench --bin repro -- serve --soak --json --out artifacts/

# Quick-budget chaos run with the event timeline on: writes
# artifacts/TRACE_fig4-faults.json (Chrome trace_event — load in
# Perfetto or chrome://tracing) next to the BENCH artifact.
trace-quick:
	$(CARGO) run --release -p qnlg-bench --bin repro -- fig4-faults --quick --trace --out artifacts/

# Perf-regression gate: freshly regenerated quick artifacts vs the
# checked-in full-budget ones. Budgets differ, so only the per-unit-work
# throughput rates are compared; 5x absorbs machine-to-machine noise
# while still catching order-of-magnitude collapses.
perf-diff: repro-quick
	$(CARGO) run --release -p qnlg-bench --bin repro -- perf-diff . artifacts/ --tolerance 5.0

# Statistical acceptance tests with their sample-size/confidence
# accounting printed (every stochastic assertion states its n and
# confidence via qmath::assert_prob_in! — no bare magic tolerances).
test-stat:
	$(CARGO) test -p games --test stat_acceptance -- --nocapture
	$(CARGO) test -p qnet --test stat_acceptance -- --nocapture
	$(CARGO) test -p qnet --test topology_stat -- --nocapture

# The metro-topology battery: property tests (chain monotonicity,
# downed-edge avoidance, exact budget conservation, relabeling
# invariance), the chain CHSH statistical pins, the E10 experiment's own
# checks, and the BENCH_topology.json determinism arm.
test-topology:
	$(CARGO) test -p qnet --test topology_props --test topology_stat
	$(CARGO) test -p qnlg-bench --lib topology
	$(CARGO) test -p qnlg-bench --test determinism topology

# CI-budget reproduction of every experiment, with schema-validated
# JSON-lines artifacts in artifacts/. Fails if any acceptance check fails.
repro-quick:
	$(CARGO) run --release -p qnlg-bench --bin repro -- all --quick --json --out artifacts/
	$(CARGO) run --release -p qnlg-bench --bin repro -- check-artifacts artifacts/
