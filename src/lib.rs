//! # qnlg — quantum non-local games for networked systems
//!
//! A full Rust reproduction of *"Faster-than-light coordination for
//! networked systems with quantum non-local games"* (Arun, Chidambaram,
//! Aaronson — HotNets '25).
//!
//! Quantum entanglement lets spatially-separated parties produce
//! **correlated random decisions without communicating** — strictly
//! stronger correlations than any classical shared-randomness scheme can
//! achieve. This workspace packages that capability for networked
//! systems:
//!
//! - [`core`](qnlg_core) — the coordination primitives
//!   ([`qnlg_core::ColocationCoordinator`],
//!   [`qnlg_core::AffinityCoordinator`]): decide locally and instantly,
//!   correlated with your peer.
//! - [`games`] — the theory: CHSH, XOR games, quantum/classical values,
//!   GHZ multiparty games.
//! - [`qsim`] — exact statevector/density-matrix simulation standing in
//!   for the entangled-photon hardware.
//! - [`qnet`] — discrete-event model of the paper's architecture (SPDC
//!   source, fiber, quantum NICs with finite memory lifetime).
//! - [`loadbalance`] — the Figure 4 simulation: CHSH-paired load
//!   balancers beat every classical strategy at moderate-to-high load.
//! - [`ecmp`] — the negative result: no quantum advantage for ECMP-style
//!   routing, verified numerically.
//!
//! ## Quickstart
//!
//! ```
//! use qnlg::qnlg_core::{CoordinatorBuilder, TaskClass};
//!
//! // One coordinator, two endpoints — one per load balancer.
//! let coordinator = CoordinatorBuilder::new().seed(42).build_colocation();
//! let (alice, bob) = coordinator.endpoints();
//!
//! // Requests arrive; each balancer decides locally, with zero latency.
//! let server_a = alice.decide_server(TaskClass::Colocate, 16);
//! let server_b = bob.decide_server(TaskClass::Colocate, 16);
//! // Both type-C: same server with probability cos²(π/8) ≈ 0.854 —
//! // impossible classically without communication (max 0.75).
//! assert!(server_a < 16 && server_b < 16);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/repro.rs` for the harness that regenerates every
//! figure in the paper.

pub use ecmp;
pub use games;
pub use loadbalance;
pub use qmath;
pub use qnet;
pub use qnlg_core;
pub use qsim;

/// The library version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
